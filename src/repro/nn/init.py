"""Weight initialisation schemes."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, new_rng


def xavier_uniform(shape: Tuple[int, int], rng: SeedLike = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a (fan_in, fan_out) matrix."""
    rng = new_rng(rng)
    fan_in, fan_out = shape
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_uniform(shape: Tuple[int, int], rng: SeedLike = None) -> np.ndarray:
    """He (Kaiming) uniform initialisation, suited to ReLU layers."""
    rng = new_rng(rng)
    fan_in = shape[0]
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def orthogonal(shape: Tuple[int, int], gain: float = 1.0, rng: SeedLike = None) -> np.ndarray:
    """Orthogonal initialisation, commonly used for recurrent weight matrices."""
    rng = new_rng(rng)
    rows, cols = shape
    a = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(a)
    q = q * np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols]


def zeros(shape) -> np.ndarray:
    return np.zeros(shape)
