"""Loss functions (thin re-export layer over :mod:`repro.autograd.functional`).

Kept as a separate module so training code reads naturally
(``from repro.nn import losses``) and so future losses have a home.
"""

from repro.autograd.functional import (
    cross_entropy,
    entropy,
    huber_loss,
    mse_loss,
    nll_of_actions,
)

__all__ = ["cross_entropy", "entropy", "huber_loss", "mse_loss", "nll_of_actions"]
