"""Minimal neural-network layer library built on the autograd engine."""

from repro.nn.module import Module, Parameter, Sequential
from repro.nn.linear import Linear
from repro.nn.activations import Tanh, Sigmoid, ReLU, Identity
from repro.nn.rnn import GRUCell, GRU
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "Tanh",
    "Sigmoid",
    "ReLU",
    "Identity",
    "GRUCell",
    "GRU",
    "init",
]
