"""Base classes for network modules: parameter registration and state I/O."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.autograd.tensor import Tensor
from repro.errors import SerializationError


class Parameter(Tensor):
    """A tensor that is always trainable and discoverable by :class:`Module`.

    Parameters additionally carry a monotonically increasing ``version``
    so inference-side caches (packed weight layouts for the numpy and
    native GRU kernels) can detect weight updates without comparing
    array contents.  ``data`` is a property whose setter bumps the
    version: the optimizers' in-place ``param.data -= update`` resolves
    to a read, an in-place op and a set-back, so it fires the setter;
    code that writes *through* the array (``param.data[...] = value``)
    must use :meth:`assign` instead.
    """

    # Shadows the ``data`` slot descriptor inherited from Tensor: the
    # backing array lives in the instance ``__dict__`` (subclassing a
    # slotted class without declaring ``__slots__`` re-enables it), and
    # Tensor.__init__'s ``self.data = ...`` routes through the setter.
    @property
    def data(self) -> np.ndarray:
        return self._data

    @data.setter
    def data(self, value) -> None:
        self._data = np.asarray(value, dtype=np.float64)
        self._version = getattr(self, "_version", -1) + 1

    @property
    def version(self) -> int:
        """Bumped on every rebinding of ``data`` and every :meth:`assign`."""
        return self._version

    def assign(self, value) -> None:
        """In-place overwrite of the backing array that bumps ``version``."""
        self._data[...] = value
        self._version += 1

    def __init__(self, data, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)
        # Parameters must stay trainable even if constructed under no_grad().
        self.requires_grad = True


class Module:
    """Base class providing parameter discovery, state dicts and train/eval flags.

    Subclasses assign :class:`Parameter` and sub-``Module`` instances as
    attributes; ``parameters()`` walks the attribute tree recursively.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # Parameter discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for attr_name, value in vars(self).items():
            if attr_name.startswith("_") and not isinstance(value, (Parameter, Module, list)):
                continue
            full = f"{prefix}{attr_name}" if not prefix else f"{prefix}.{attr_name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(full)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{i}")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters()))

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Train / eval mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for _, module in self.named_children():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def named_children(self) -> Iterator[Tuple[str, "Module"]]:
        for attr_name, value in vars(self).items():
            if isinstance(value, Module):
                yield attr_name, value
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield f"{attr_name}.{i}", item

    # ------------------------------------------------------------------
    # State (de)serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: np.array(param.data) for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise SerializationError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise SerializationError(
                    f"shape mismatch for {name}: expected {param.data.shape}, got {value.shape}"
                )
            param.assign(value)

    def copy_from(self, other: "Module") -> None:
        """Copy parameter values from a module with identical structure."""
        self.load_state_dict(other.state_dict())

    # ------------------------------------------------------------------
    # Calling convention
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - interface method
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Apply a list of modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
