"""Activation modules usable inside :class:`~repro.nn.module.Sequential`."""

from __future__ import annotations

from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class Tanh(Module):
    """Elementwise hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Elementwise logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class ReLU(Module):
    """Elementwise rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Identity(Module):
    """Pass-through module (useful as a configurable default)."""

    def forward(self, x: Tensor) -> Tensor:
        return x
