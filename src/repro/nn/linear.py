"""Fully connected layer."""

from __future__ import annotations

from repro.autograd.tensor import Tensor
from repro.errors import ShapeError
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.utils.rng import SeedLike, new_rng


class Linear(Module):
    """Affine transform ``y = x W + b`` for row-major inputs of shape (N, in) or (in,)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ShapeError(
                f"Linear requires positive sizes, got in={in_features}, out={out_features}"
            )
        rng = new_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng), name="weight")
        self.bias = Parameter(init.zeros(out_features), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        if x.shape[-1] != self.in_features:
            raise ShapeError(
                f"Linear expected last dim {self.in_features}, got input shape {x.shape}"
            )
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"
