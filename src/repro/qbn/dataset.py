"""The transition dataset collected from a trained policy.

Paper Section 3.2.1: "A dataset of <h_t, h_{t+1}, o_t, a_t> can be
collected via running the trained DRL model.  The QBNs are then trained
over the collected dataset using supervised learning to minimize the
reconstruction error."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.drl.rollout import Trajectory, TrajectoryBatch
from repro.errors import ExtractionError
from repro.utils.rng import SeedLike, new_rng


@dataclass
class TransitionDataset:
    """Arrays of aligned transitions from one or more trajectories.

    All arrays share the first dimension N (total number of steps):

    * ``observations`` — normalised observations o_t, shape (N, obs_dim)
    * ``raw_observations`` — unnormalised o_t (used for interpretation)
    * ``hidden_before`` / ``hidden_after`` — h_t and h_{t+1}
    * ``actions`` — a_t
    * ``episode_ids`` / ``step_ids`` — provenance of each row
    """

    observations: np.ndarray
    raw_observations: np.ndarray
    hidden_before: np.ndarray
    hidden_after: np.ndarray
    actions: np.ndarray
    episode_ids: np.ndarray
    step_ids: np.ndarray

    def __post_init__(self) -> None:
        n = self.observations.shape[0]
        for name in (
            "raw_observations",
            "hidden_before",
            "hidden_after",
            "actions",
            "episode_ids",
            "step_ids",
        ):
            if getattr(self, name).shape[0] != n:
                raise ExtractionError(
                    f"dataset arrays are misaligned: {name} has "
                    f"{getattr(self, name).shape[0]} rows, expected {n}"
                )

    def __len__(self) -> int:
        return int(self.observations.shape[0])

    @property
    def observation_dim(self) -> int:
        return int(self.observations.shape[1])

    @property
    def hidden_dim(self) -> int:
        return int(self.hidden_before.shape[1])

    @staticmethod
    def from_trajectories(trajectories: Sequence[Trajectory]) -> "TransitionDataset":
        """Build a dataset from rollouts of the trained policy."""
        trajectories = [t for t in trajectories if len(t) > 0]
        if not trajectories:
            raise ExtractionError("cannot build a transition dataset from empty rollouts")
        observations, raw, before, after, actions, episodes, steps = [], [], [], [], [], [], []
        for episode_id, trajectory in enumerate(trajectories):
            observations.append(trajectory.observations())
            raw.append(trajectory.raw_observations())
            before.append(trajectory.hidden_states_before())
            after.append(trajectory.hidden_states_after())
            actions.append(trajectory.actions())
            episodes.append(np.full(len(trajectory), episode_id, dtype=int))
            steps.append(np.arange(len(trajectory), dtype=int))
        return TransitionDataset(
            observations=np.concatenate(observations),
            raw_observations=np.concatenate(raw),
            hidden_before=np.concatenate(before),
            hidden_after=np.concatenate(after),
            actions=np.concatenate(actions),
            episode_ids=np.concatenate(episodes),
            step_ids=np.concatenate(steps),
        )

    @staticmethod
    def from_batch(batch: TrajectoryBatch) -> "TransitionDataset":
        """Build a dataset straight from a padded rollout batch.

        Equivalent to ``from_trajectories(batch.trajectories)`` — same
        rows in the same episode-major order — but assembled with a few
        vectorized gathers instead of per-episode concatenation.
        """
        time_idx, episode_idx = batch.episode_major_positions()
        if time_idx.size == 0:
            raise ExtractionError("cannot build a transition dataset from empty rollouts")
        return TransitionDataset(
            observations=batch.observations[time_idx, episode_idx],
            raw_observations=batch.raw_observations[time_idx, episode_idx],
            hidden_before=batch.hidden_before[time_idx, episode_idx],
            hidden_after=batch.hidden_after[time_idx, episode_idx],
            actions=batch.actions[time_idx, episode_idx],
            episode_ids=episode_idx.astype(int),
            step_ids=time_idx.astype(int),
        )

    # ------------------------------------------------------------------
    # Mini-batching
    # ------------------------------------------------------------------
    def batches(
        self, field: str, batch_size: int, rng: SeedLike = None, shuffle: bool = True
    ) -> Iterator[np.ndarray]:
        """Yield mini-batches of one array field (e.g. ``"observations"``)."""
        if batch_size <= 0:
            raise ExtractionError(f"batch_size must be positive, got {batch_size}")
        data = getattr(self, field)
        indices = np.arange(len(self))
        if shuffle:
            new_rng(rng).shuffle(indices)
        for start in range(0, len(self), batch_size):
            yield data[indices[start : start + batch_size]]

    def split(self, fraction: float, rng: SeedLike = None) -> Tuple["TransitionDataset", "TransitionDataset"]:
        """Random split into (train, held-out) datasets by row."""
        if not 0.0 < fraction < 1.0:
            raise ExtractionError(f"fraction must be in (0, 1), got {fraction}")
        indices = np.arange(len(self))
        new_rng(rng).shuffle(indices)
        cut = int(round(fraction * len(self)))
        cut = min(max(cut, 1), len(self) - 1)
        first, second = indices[:cut], indices[cut:]
        return self._subset(first), self._subset(second)

    def _subset(self, indices: np.ndarray) -> "TransitionDataset":
        return TransitionDataset(
            observations=self.observations[indices],
            raw_observations=self.raw_observations[indices],
            hidden_before=self.hidden_before[indices],
            hidden_after=self.hidden_after[indices],
            actions=self.actions[indices],
            episode_ids=self.episode_ids[indices],
            step_ids=self.step_ids[indices],
        )

    def episodes(self) -> List[np.ndarray]:
        """Row indices of each episode, in step order."""
        result = []
        for episode_id in np.unique(self.episode_ids):
            rows = np.where(self.episode_ids == episode_id)[0]
            rows = rows[np.argsort(self.step_ids[rows])]
            result.append(rows)
        return result
