"""The quantized-bottleneck auto-encoder used for observations and hidden states."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.errors import ConfigurationError
from repro.nn import Linear, Module
from repro.qbn.quantize import quantize_ste, values_to_codes
from repro.utils.rng import SeedLike, new_rng


@dataclass(frozen=True)
class QBNConfig:
    """Shape of a quantized bottleneck network.

    The paper uses ``quantization_levels`` k = 3 and ``latent_dim`` L = 64
    (Section 4.2); smaller latent sizes produce coarser, smaller FSMs and
    are used by the scaled-down benchmarks.
    """

    input_dim: int
    latent_dim: int = 64
    hidden_dim: int = 64
    quantization_levels: int = 3

    def __post_init__(self) -> None:
        if self.input_dim <= 0 or self.latent_dim <= 0 or self.hidden_dim <= 0:
            raise ConfigurationError("QBN dimensions must be positive")
        if self.quantization_levels < 2:
            raise ConfigurationError("quantization_levels must be at least 2")


class QuantizedBottleneckNetwork(Module):
    """Auto-encoder with a k-level quantised latent code.

    ``encode`` produces the quantised latent; ``decode`` reconstructs the
    input; ``discrete_code`` returns integer level indices used as the
    discrete identity of an observation or hidden state.
    """

    def __init__(self, config: QBNConfig, rng: SeedLike = None) -> None:
        super().__init__()
        self.config = config
        rng = new_rng(rng)
        self.encoder_hidden = Linear(config.input_dim, config.hidden_dim, rng=rng)
        self.encoder_latent = Linear(config.hidden_dim, config.latent_dim, rng=rng)
        self.decoder_hidden = Linear(config.latent_dim, config.hidden_dim, rng=rng)
        self.decoder_output = Linear(config.hidden_dim, config.input_dim, rng=rng)

    # ------------------------------------------------------------------
    # Differentiable paths
    # ------------------------------------------------------------------
    def encode(self, x: Tensor) -> Tensor:
        """Quantised latent code of ``x`` (values in the k-level alphabet)."""
        if not isinstance(x, Tensor):
            x = Tensor(x)
        hidden = self.encoder_hidden(x).tanh()
        latent = self.encoder_latent(hidden).tanh()
        return quantize_ste(latent, self.config.quantization_levels)

    def decode(self, latent: Tensor) -> Tensor:
        hidden = self.decoder_hidden(latent).tanh()
        return self.decoder_output(hidden)

    def forward(self, x: Tensor) -> Tensor:
        """Reconstruction of ``x`` through the quantised bottleneck."""
        return self.decode(self.encode(x))

    # ------------------------------------------------------------------
    # Inference helpers
    # ------------------------------------------------------------------
    def discrete_code(self, x: np.ndarray) -> np.ndarray:
        """Integer code (level indices, shape (..., latent_dim)) of ``x``."""
        with no_grad():
            latent = self.encode(Tensor(np.asarray(x, dtype=float)))
        return values_to_codes(latent.numpy(), self.config.quantization_levels)

    def reconstruct(self, x: np.ndarray) -> np.ndarray:
        """Numpy reconstruction (no gradient tracking)."""
        with no_grad():
            return self.forward(Tensor(np.asarray(x, dtype=float))).numpy()

    def reconstruction_error(self, x: np.ndarray) -> float:
        """Mean squared reconstruction error over a batch."""
        x = np.asarray(x, dtype=float)
        recon = self.reconstruct(x)
        return float(np.mean((recon - x) ** 2))


def build_observation_qbn(
    observation_dim: int,
    latent_dim: int = 16,
    hidden_dim: int = 64,
    quantization_levels: int = 3,
    rng: SeedLike = None,
) -> QuantizedBottleneckNetwork:
    """Convenience constructor for the observation (OX) QBN."""
    config = QBNConfig(
        input_dim=observation_dim,
        latent_dim=latent_dim,
        hidden_dim=hidden_dim,
        quantization_levels=quantization_levels,
    )
    return QuantizedBottleneckNetwork(config, rng=rng)


def build_hidden_qbn(
    hidden_dim_of_policy: int,
    latent_dim: int = 16,
    hidden_dim: int = 64,
    quantization_levels: int = 3,
    rng: SeedLike = None,
) -> QuantizedBottleneckNetwork:
    """Convenience constructor for the hidden-state (HX) QBN."""
    config = QBNConfig(
        input_dim=hidden_dim_of_policy,
        latent_dim=latent_dim,
        hidden_dim=hidden_dim,
        quantization_levels=quantization_levels,
    )
    return QuantizedBottleneckNetwork(config, rng=rng)
