"""k-level quantisation with a straight-through gradient estimator.

The QBN bottleneck restricts each latent entry to one of ``k`` evenly
spaced levels in [-1, 1] (k = 3 gives the ternary {-1, 0, +1} used by
the paper).  The forward pass snaps values to the nearest level; the
backward pass passes gradients straight through, which is what makes
the auto-encoders trainable despite the discrete bottleneck.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.errors import ConfigurationError


def quantization_levels(k: int) -> np.ndarray:
    """The ``k`` evenly spaced quantisation levels spanning [-1, 1]."""
    if k < 2:
        raise ConfigurationError(f"quantisation needs at least 2 levels, got {k}")
    return np.linspace(-1.0, 1.0, k)


def _nearest_level_values(values: np.ndarray, k: int) -> np.ndarray:
    levels = quantization_levels(k)
    indices = np.abs(values[..., None] - levels[None, ...]).argmin(axis=-1)
    return levels[indices]


def quantize_ste(x: Tensor, k: int = 3) -> Tensor:
    """Quantise ``x`` to ``k`` levels with straight-through gradients."""
    if not isinstance(x, Tensor):
        x = Tensor(x)
    data = _nearest_level_values(np.clip(x.data, -1.0, 1.0), k)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad)

    return Tensor._make(data, (x,), backward)


def values_to_codes(values: np.ndarray, k: int = 3) -> np.ndarray:
    """Map quantised (or continuous) values to integer level indices 0..k-1."""
    values = np.asarray(values, dtype=float)
    levels = quantization_levels(k)
    return np.abs(values[..., None] - levels[None, ...]).argmin(axis=-1).astype(np.int64)


def codes_to_values(codes: np.ndarray, k: int = 3) -> np.ndarray:
    """Inverse of :func:`values_to_codes`."""
    codes = np.asarray(codes, dtype=int)
    levels = quantization_levels(k)
    if np.any(codes < 0) or np.any(codes >= k):
        raise ConfigurationError(f"codes must be in [0, {k}), got range "
                                 f"[{codes.min()}, {codes.max()}]")
    return levels[codes]


def code_key(codes: np.ndarray) -> tuple:
    """Hashable key for a single code vector (used as FSM state identity)."""
    codes = np.asarray(codes, dtype=int)
    if codes.ndim != 1:
        raise ConfigurationError(f"code_key expects a 1-d code vector, got shape {codes.shape}")
    return tuple(int(c) for c in codes)
