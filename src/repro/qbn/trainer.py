"""Supervised training of the observation and hidden-state QBNs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.drl.policy import RecurrentPolicyValueNet
from repro.errors import ConfigurationError, TrainingError
from repro.optim import Adam, clip_grad_norm
from repro.qbn.autoencoder import QBNConfig, QuantizedBottleneckNetwork
from repro.qbn.dataset import TransitionDataset
from repro.utils.rng import SeedLike, new_rng


@dataclass(frozen=True)
class QBNTrainingConfig:
    """Hyper-parameters for QBN reconstruction training."""

    epochs: int = 30
    batch_size: int = 256
    learning_rate: float = 1e-3
    grad_clip_norm: float = 5.0
    observation_latent_dim: int = 16
    hidden_latent_dim: int = 16
    autoencoder_hidden_dim: int = 64
    quantization_levels: int = 3

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ConfigurationError("epochs and batch_size must be positive")
        if self.learning_rate <= 0 or self.grad_clip_norm <= 0:
            raise ConfigurationError("learning_rate and grad_clip_norm must be positive")
        if self.observation_latent_dim <= 0 or self.hidden_latent_dim <= 0:
            raise ConfigurationError("latent dims must be positive")
        if self.quantization_levels < 2:
            raise ConfigurationError("quantization_levels must be at least 2")


@dataclass
class QBNTrainingResult:
    """Trained QBNs plus their loss curves and fidelity statistics."""

    observation_qbn: QuantizedBottleneckNetwork
    hidden_qbn: QuantizedBottleneckNetwork
    observation_losses: List[float] = field(default_factory=list)
    hidden_losses: List[float] = field(default_factory=list)
    fine_tune_losses: List[float] = field(default_factory=list)
    action_agreement: Optional[float] = None

    def as_summary(self) -> Dict[str, float]:
        summary = {
            "observation_final_loss": self.observation_losses[-1]
            if self.observation_losses
            else float("nan"),
            "hidden_final_loss": self.hidden_losses[-1] if self.hidden_losses else float("nan"),
        }
        if self.action_agreement is not None:
            summary["action_agreement"] = self.action_agreement
        return summary


class QBNTrainer:
    """Trains the OX (observation) and HX (hidden state) auto-encoders."""

    def __init__(self, config: Optional[QBNTrainingConfig] = None, rng: SeedLike = None) -> None:
        self.config = config or QBNTrainingConfig()
        self._rng = new_rng(rng)

    # ------------------------------------------------------------------
    # Reconstruction training
    # ------------------------------------------------------------------
    def _train_autoencoder(
        self, qbn: QuantizedBottleneckNetwork, data: np.ndarray
    ) -> List[float]:
        if data.ndim != 2 or data.shape[0] == 0:
            raise TrainingError(f"QBN training data must be (N, D), got shape {data.shape}")
        optimizer = Adam(qbn.parameters(), lr=self.config.learning_rate)
        losses: List[float] = []
        indices = np.arange(data.shape[0])
        for _ in range(self.config.epochs):
            self._rng.shuffle(indices)
            epoch_losses: List[float] = []
            for start in range(0, data.shape[0], self.config.batch_size):
                batch = data[indices[start : start + self.config.batch_size]]
                reconstruction = qbn(Tensor(batch))
                loss = F.mse_loss(reconstruction, batch)
                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(qbn.parameters(), self.config.grad_clip_norm)
                optimizer.step()
                epoch_losses.append(loss.item())
            losses.append(float(np.mean(epoch_losses)))
        return losses

    def train(
        self,
        dataset: TransitionDataset,
        policy: Optional[RecurrentPolicyValueNet] = None,
        fine_tune_epochs: int = 0,
    ) -> QBNTrainingResult:
        """Train both QBNs on ``dataset`` (and optionally fine-tune against the policy).

        ``fine_tune_epochs > 0`` adds the paper's "insert the QBNs and
        retrain" step: the QBNs are further optimised so that the policy,
        when fed the *reconstructed* observation and hidden state,
        reproduces the actions it originally took.
        """
        observation_qbn = QuantizedBottleneckNetwork(
            QBNConfig(
                input_dim=dataset.observation_dim,
                latent_dim=self.config.observation_latent_dim,
                hidden_dim=self.config.autoencoder_hidden_dim,
                quantization_levels=self.config.quantization_levels,
            ),
            rng=self._rng,
        )
        hidden_qbn = QuantizedBottleneckNetwork(
            QBNConfig(
                input_dim=dataset.hidden_dim,
                latent_dim=self.config.hidden_latent_dim,
                hidden_dim=self.config.autoencoder_hidden_dim,
                quantization_levels=self.config.quantization_levels,
            ),
            rng=self._rng,
        )

        result = QBNTrainingResult(observation_qbn=observation_qbn, hidden_qbn=hidden_qbn)
        result.observation_losses = self._train_autoencoder(
            observation_qbn, dataset.observations
        )
        hidden_data = np.concatenate([dataset.hidden_before, dataset.hidden_after])
        result.hidden_losses = self._train_autoencoder(hidden_qbn, hidden_data)

        if fine_tune_epochs > 0:
            if policy is None:
                raise TrainingError("fine-tuning requires the trained policy")
            result.fine_tune_losses = self._fine_tune(
                observation_qbn, hidden_qbn, policy, dataset, fine_tune_epochs
            )
        if policy is not None:
            result.action_agreement = self.action_agreement(
                observation_qbn, hidden_qbn, policy, dataset
            )
        return result

    # ------------------------------------------------------------------
    # Fine-tuning with the QBNs inserted into the policy
    # ------------------------------------------------------------------
    def _fine_tune(
        self,
        observation_qbn: QuantizedBottleneckNetwork,
        hidden_qbn: QuantizedBottleneckNetwork,
        policy: RecurrentPolicyValueNet,
        dataset: TransitionDataset,
        epochs: int,
    ) -> List[float]:
        parameters = observation_qbn.parameters() + hidden_qbn.parameters()
        optimizer = Adam(parameters, lr=self.config.learning_rate)
        losses: List[float] = []
        indices = np.arange(len(dataset))
        for _ in range(epochs):
            self._rng.shuffle(indices)
            epoch_losses: List[float] = []
            for start in range(0, len(dataset), self.config.batch_size):
                rows = indices[start : start + self.config.batch_size]
                observations = dataset.observations[rows]
                hiddens = dataset.hidden_before[rows]
                actions = dataset.actions[rows]

                reconstructed_obs = observation_qbn(Tensor(observations))
                reconstructed_hidden = hidden_qbn(Tensor(hiddens))
                next_hidden = policy.gru(reconstructed_obs, reconstructed_hidden)
                logits = policy.policy_head(next_hidden)
                loss = F.cross_entropy(logits, actions)

                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(parameters, self.config.grad_clip_norm)
                optimizer.step()
                epoch_losses.append(loss.item())
            losses.append(float(np.mean(epoch_losses)))
        return losses

    # ------------------------------------------------------------------
    # Fidelity diagnostics
    # ------------------------------------------------------------------
    @staticmethod
    def action_agreement(
        observation_qbn: QuantizedBottleneckNetwork,
        hidden_qbn: QuantizedBottleneckNetwork,
        policy: RecurrentPolicyValueNet,
        dataset: TransitionDataset,
    ) -> float:
        """Fraction of dataset steps whose action is unchanged by QBN reconstruction."""
        from repro.autograd.tensor import no_grad

        with no_grad():
            reconstructed_obs = observation_qbn(Tensor(dataset.observations))
            reconstructed_hidden = hidden_qbn(Tensor(dataset.hidden_before))
            next_hidden = policy.gru(reconstructed_obs, reconstructed_hidden)
            logits = policy.policy_head(next_hidden).numpy()
        predicted = logits.argmax(axis=1)
        return float(np.mean(predicted == dataset.actions))
