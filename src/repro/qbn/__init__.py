"""Quantized Bottleneck Networks (QBNs).

Implementation of the quantisation technique of Koul, Greydanus & Fern
(2018) used by the paper (Section 3.2.1): two auto-encoders — one for
observations (OX) and one for GRU hidden states (HX) — whose latent
entries are restricted to ``k`` discrete levels.  Running the trained
policy through the QBNs yields a discrete dataset
``<bh_t, bh_{t+1}, bo_t, a_t>`` from which a finite state machine is read
off as a transition table.
"""

from repro.qbn.quantize import quantize_ste, quantization_levels, values_to_codes, codes_to_values
from repro.qbn.autoencoder import QBNConfig, QuantizedBottleneckNetwork
from repro.qbn.dataset import TransitionDataset
from repro.qbn.trainer import QBNTrainer, QBNTrainingConfig, QBNTrainingResult

__all__ = [
    "quantize_ste",
    "quantization_levels",
    "values_to_codes",
    "codes_to_values",
    "QBNConfig",
    "QuantizedBottleneckNetwork",
    "TransitionDataset",
    "QBNTrainer",
    "QBNTrainingConfig",
    "QBNTrainingResult",
]
