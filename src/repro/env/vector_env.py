"""Vectorized lockstep execution of N independent storage-allocation episodes.

:class:`VectorStorageAllocationEnv` owns one :class:`StorageSimulator` per
slot and advances all unfinished episodes by one interval per
:meth:`step` call, exposing batched ``(B, obs_dim)`` observation matrices
so that one batched policy forward pass can serve every environment.

Design contract (relied on by the batched rollout collector and its
equivalence tests): slot ``i`` of a vector episode is **bit-identical**
to a sequential :class:`~repro.env.environment.StorageAllocationEnv`
episode on the same trace with the same rng stream.  Everything the
environment computes per slot therefore reuses the sequential
components (the simulator itself, the reward functions, the observation
normalisation constants); only the *assembly* is batched, and the
assembly is restricted to elementwise operations whose rows cannot
depend on the batch size.

Finished episodes are auto-masked: their slots stop consuming actions
and randomness, report zero reward, and keep returning their final
observation row so the batch keeps a stable shape until every episode
is done.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.env.action import ActionSpace
from repro.env.observation import OBSERVATION_DIM, ObservationEncoder
from repro.env.reward import (
    RewardConfig,
    compute_step_reward_from_values,
    compute_terminal_reward,
)
from repro.errors import EnvironmentError_
from repro.storage.cache import CacheModel
from repro.storage.levels import LEVELS
from repro.storage.metrics import EpisodeMetrics
from repro.storage.simulator import StorageSimulator, StorageSystemConfig
from repro.storage.workload import WorkloadTrace
from repro.utils.rng import SeedLike

_NUM_LEVELS = len(LEVELS)


@dataclass(frozen=True)
class VectorStepResult:
    """Outcome of one lockstep interval over the whole batch.

    ``stepped`` marks slots that actually advanced this call (episodes
    that were already finished are skipped and keep ``rewards`` of 0);
    ``newly_done`` marks slots that finished during this call.
    ``observations`` / ``raw_observations`` keep the final row frozen for
    finished slots.
    """

    observations: np.ndarray       # (B, obs_dim), normalised
    raw_observations: np.ndarray   # (B, obs_dim)
    rewards: np.ndarray            # (B,)
    dones: np.ndarray              # (B,) bool
    stepped: np.ndarray            # (B,) bool
    newly_done: np.ndarray         # (B,) bool
    makespans: np.ndarray          # (B,) int, meaningful once done
    truncated: np.ndarray          # (B,) bool


class VectorStorageAllocationEnv:
    """N storage-allocation MDPs advanced in lockstep with batched outputs.

    Typical usage::

        venv = VectorStorageAllocationEnv(config)
        observations = venv.reset(traces, rngs=seeds)
        while not venv.all_done:
            result = venv.step(actions)          # (B,) ints
            observations = result.observations   # (B, obs_dim)
    """

    def __init__(
        self,
        system_config: Optional[StorageSystemConfig] = None,
        reward_config: Optional[RewardConfig] = None,
        record_metrics: bool = False,
        cache_model_factory: Optional[Callable[[], CacheModel]] = None,
    ) -> None:
        """``record_metrics`` enables per-interval IntervalMetrics records
        on every slot (needed when consumers inspect episode metrics, as
        evaluation does); rollout collection leaves it off — rewards are
        computed from the lightweight per-step summaries either way, with
        identical values.  ``cache_model_factory`` builds one cache model
        per slot (each simulator needs its own instance — stateful models
        must not be shared across lockstep episodes); by default the
        system config's model is used."""
        self.system_config = system_config or StorageSystemConfig()
        self.system_config.validate()
        self.reward_config = reward_config or RewardConfig()
        self.record_metrics = bool(record_metrics)
        self._cache_model_factory = cache_model_factory
        self.action_space = ActionSpace()
        self.observation_encoder = ObservationEncoder(self.system_config)
        self._sims: List[StorageSimulator] = []
        self._dones = np.zeros(0, dtype=bool)
        self._makespans = np.zeros(0, dtype=int)
        self._truncated = np.zeros(0, dtype=bool)
        self._raw = np.zeros((0, OBSERVATION_DIM))
        self._normalized = np.zeros((0, OBSERVATION_DIM))
        self._row_workload_ids: List[int] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_envs(self) -> int:
        return len(self._sims)

    @property
    def observation_dim(self) -> int:
        return self.observation_encoder.dimension

    @property
    def num_actions(self) -> int:
        return self.action_space.size

    @property
    def all_done(self) -> bool:
        return bool(self._dones.all()) if self._dones.size else False

    @property
    def dones(self) -> np.ndarray:
        return self._raw_copy(self._dones)

    def simulators(self) -> List[StorageSimulator]:
        """The underlying per-slot simulators (read-only use intended)."""
        return list(self._sims)

    def episode_metrics(self) -> List[EpisodeMetrics]:
        """Per-slot episode metrics (complete once the slot is done)."""
        return [sim.episode_metrics for sim in self._sims]

    @staticmethod
    def _raw_copy(array: np.ndarray) -> np.ndarray:
        return np.array(array)

    # ------------------------------------------------------------------
    # Episode API
    # ------------------------------------------------------------------
    def reset(
        self,
        traces: Sequence[WorkloadTrace],
        rngs: Optional[Sequence[SeedLike]] = None,
    ) -> np.ndarray:
        """Start one episode per trace; returns (B, obs_dim) normalised obs.

        ``rngs`` optionally supplies one seed/generator per slot; slot
        ``i`` then reproduces a sequential ``env.reset(trace, rng=rngs[i])``
        episode exactly.
        """
        if not traces:
            raise EnvironmentError_("reset() needs at least one trace")
        if rngs is not None and len(rngs) != len(traces):
            raise EnvironmentError_(
                f"got {len(rngs)} rng streams for {len(traces)} traces"
            )
        batch = len(traces)
        while len(self._sims) < batch:
            cache_model = (
                self._cache_model_factory() if self._cache_model_factory else None
            )
            self._sims.append(
                StorageSimulator(
                    self.system_config,
                    cache_model=cache_model,
                    record_metrics=self.record_metrics,
                )
            )
        del self._sims[batch:]

        self._dones = np.zeros(batch, dtype=bool)
        self._makespans = np.zeros(batch, dtype=int)
        self._truncated = np.zeros(batch, dtype=bool)
        self._raw = np.empty((batch, OBSERVATION_DIM))
        self._row_workload_ids = [0] * batch
        for i, trace in enumerate(traces):
            self._sims[i].reset(trace, rng=None if rngs is None else rngs[i])
            self._fill_raw_row(i)
        self._normalized = self.observation_encoder.normalize_batch(self._raw)
        return self._raw_copy(self._normalized)

    def step(self, actions: Sequence[int]) -> VectorStepResult:
        """Advance every unfinished episode by one interval under ``actions``."""
        if not self._sims:
            raise EnvironmentError_("step() called before reset()")
        actions = np.asarray(actions)
        if actions.shape != (self.num_envs,):
            raise EnvironmentError_(
                f"expected ({self.num_envs},) actions, got shape {actions.shape}"
            )
        batch = self.num_envs
        rewards = np.zeros(batch)
        stepped = ~self._dones
        newly_done = np.zeros(batch, dtype=bool)

        for i in np.nonzero(stepped)[0].tolist():
            sim = self._sims[i]
            sim.step(int(actions[i]))
            reward = compute_step_reward_from_values(
                self.reward_config, sim.last_step_values
            )
            if sim.is_done:
                reward += compute_terminal_reward(self.reward_config, sim.makespan)
                self._dones[i] = True
                newly_done[i] = True
                self._makespans[i] = sim.makespan
                self._truncated[i] = sim.episode_metrics.truncated
            rewards[i] = reward
            self._fill_raw_row(i)

        raw = self._raw_copy(self._raw)
        if stepped.all():
            normalized = self.observation_encoder.normalize_batch(raw)
        else:
            # Finished slots keep their frozen rows; only refresh the rest.
            normalized = self._raw_copy(self._normalized)
            moved = stepped
            normalized[moved] = self.observation_encoder.normalize_batch(raw[moved])
        self._normalized = normalized

        return VectorStepResult(
            observations=self._raw_copy(normalized),
            raw_observations=raw,
            rewards=rewards,
            dones=self._raw_copy(self._dones),
            stepped=stepped,
            newly_done=newly_done,
            makespans=self._raw_copy(self._makespans),
            truncated=self._raw_copy(self._truncated),
        )

    # ------------------------------------------------------------------
    # Batched views
    # ------------------------------------------------------------------
    def observations(self) -> np.ndarray:
        """Current (B, obs_dim) normalised observation matrix."""
        self._require_reset()
        return self._raw_copy(self._normalized)

    def raw_observations(self) -> np.ndarray:
        """Current (B, obs_dim) raw observation matrix."""
        self._require_reset()
        return self._raw_copy(self._raw)

    def valid_action_masks(self) -> np.ndarray:
        """(B, num_actions) legality masks for the next decision.

        Finished slots report a no-op-only mask: they accept no further
        migrations, and the no-op keeps batched action vectors well
        formed without consuming anything.
        """
        self._require_reset()
        masks = self.action_space.valid_mask_batch([sim.core_pool for sim in self._sims])
        for i in np.nonzero(self._dones)[0]:
            masks[i] = False
            masks[i, 0] = True
        return masks

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_reset(self) -> None:
        if not self._sims:
            raise EnvironmentError_("vector environment has not been reset")

    def _fill_raw_row(self, index: int) -> None:
        """Assemble one raw observation row exactly as ``Observation.raw``.

        The row is [core counts (3), utilisation (3), S vector (14),
        I vector (14), Q (1)] — the same float values the sequential
        environment would produce, written straight into the batch
        matrix.
        """
        sim = self._sims[index]
        row = self._raw[index]
        pool = sim.core_pool
        utilization = sim.last_utilization
        for j, level in enumerate(LEVELS):
            row[j] = float(pool.count(level))
            row[_NUM_LEVELS + j] = float(utilization[level])
        workload = sim.current_workload()
        # Workload intervals are immutable, so the S/I/Q span only needs
        # rewriting when the slot moved on to a different interval object
        # (the drain phase shares one empty-interval singleton).
        if id(workload) != self._row_workload_ids[index]:
            self._row_workload_ids[index] = id(workload)
            n = 2 * _NUM_LEVELS
            size_vector = workload.size_vector()
            row[n : n + size_vector.size] = size_vector
            row[n + size_vector.size : n + 2 * size_vector.size] = workload.ratios
            row[-1] = float(workload.total_requests)
