"""Vectorized lockstep execution of N independent storage-allocation episodes.

:class:`VectorStorageAllocationEnv` owns one shared
:class:`~repro.storage.vector_state.VectorSimulatorState` — the
struct-of-arrays simulator core that holds all B environments' level
backlogs, core residency/cooldowns and interval accumulators as
``(B, ...)`` arrays — and advances every unfinished episode by one
interval per :meth:`step` call with array kernels, exposing batched
``(B, obs_dim)`` observation matrices so that one batched policy forward
pass can serve every environment.

Design contract (relied on by the batched rollout collector and its
equivalence tests): slot ``i`` of a vector episode is **bit-identical**
to a sequential :class:`~repro.env.environment.StorageAllocationEnv`
episode on the same trace with the same rng stream.  The scalar
environment's simulator is the B=1 view of the same simulator core, and
every batched assembly step (observation rows, normalisation, rewards)
is restricted to elementwise operations whose rows cannot depend on the
batch size.

Finished episodes are auto-masked: their slots stop consuming actions
and randomness, report zero reward, and keep returning their final
observation row so the batch keeps a stable shape until every episode
is done.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.env.action import ActionSpace
from repro.env.observation import OBSERVATION_DIM, ObservationEncoder
from repro.env.reward import (
    RewardConfig,
    compute_step_rewards_batch,
    compute_terminal_rewards_batch,
)
from repro.errors import EnvironmentError_, SimulationError
from repro.storage.cache import CacheModel
from repro.storage.iorequest import NUM_IO_TYPES
from repro.storage.levels import LEVELS
from repro.storage.metrics import EpisodeMetrics
from repro.storage.simulator import StorageSystemConfig
from repro.storage.vector_state import VectorSimulatorState
from repro.storage.workload import WorkloadInterval, WorkloadTrace
from repro.utils.rng import SeedLike

_NUM_LEVELS = len(LEVELS)
# Raw-row layout: [counts (3), utilisation (3), S (14), I (14), Q (1)].
_IQ_START = 2 * _NUM_LEVELS + NUM_IO_TYPES


@dataclass(frozen=True)
class VectorStepResult:
    """Outcome of one lockstep interval over the whole batch.

    ``stepped`` marks slots that actually advanced this call (episodes
    that were already finished are skipped and keep ``rewards`` of 0);
    ``newly_done`` marks slots that finished during this call.
    ``observations`` / ``raw_observations`` keep the final row frozen for
    finished slots.
    """

    observations: np.ndarray       # (B, obs_dim), normalised
    raw_observations: np.ndarray   # (B, obs_dim)
    rewards: np.ndarray            # (B,)
    dones: np.ndarray              # (B,) bool
    stepped: np.ndarray            # (B,) bool
    newly_done: np.ndarray         # (B,) bool
    makespans: np.ndarray          # (B,) int, meaningful once done
    truncated: np.ndarray          # (B,) bool


class VectorStorageAllocationEnv:
    """N storage-allocation MDPs advanced in lockstep with batched outputs.

    Typical usage::

        venv = VectorStorageAllocationEnv(config)
        observations = venv.reset(traces, rngs=seeds)
        while not venv.all_done:
            result = venv.step(actions)          # (B,) ints
            observations = result.observations   # (B, obs_dim)
    """

    def __init__(
        self,
        system_config: Optional[StorageSystemConfig] = None,
        reward_config: Optional[RewardConfig] = None,
        record_metrics: bool = False,
        cache_model_factory: Optional[Callable[[], CacheModel]] = None,
    ) -> None:
        """``record_metrics`` enables per-interval IntervalMetrics records
        on every slot (needed when consumers inspect episode metrics, as
        evaluation does); rollout collection leaves it off — rewards are
        computed from the simulator core's per-step arrays either way,
        with identical values.  ``cache_model_factory`` builds one cache
        model per slot (each slot needs its own instance — stateful
        models must not be shared across lockstep episodes); by default
        the system config's model is used."""
        self.system_config = system_config or StorageSystemConfig()
        self.system_config.validate()
        self.reward_config = reward_config or RewardConfig()
        self.record_metrics = bool(record_metrics)
        self.action_space = ActionSpace()
        self.observation_encoder = ObservationEncoder(self.system_config)
        self._state = VectorSimulatorState(
            self.system_config,
            record_metrics=self.record_metrics,
            cache_model_factory=cache_model_factory,
        )
        self._batch = 0
        self._makespans = np.zeros(0, dtype=int)
        self._raw = np.zeros((0, OBSERVATION_DIM))
        self._normalized = np.zeros((0, OBSERVATION_DIM))
        self._workload_features = np.zeros((0, 1, NUM_IO_TYPES + 1))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_envs(self) -> int:
        return self._batch

    @property
    def observation_dim(self) -> int:
        return self.observation_encoder.dimension

    @property
    def num_actions(self) -> int:
        return self.action_space.size

    @property
    def all_done(self) -> bool:
        return bool(self._state.done.all()) if self._batch else False

    @property
    def dones(self) -> np.ndarray:
        return np.array(self._state.done)

    @property
    def simulator_state(self) -> VectorSimulatorState:
        """The underlying struct-of-arrays simulator core (read-only use)."""
        return self._state

    def episode_metrics(self) -> List[EpisodeMetrics]:
        """Per-slot episode metrics (complete once the slot is done)."""
        return list(self._state.episodes)

    @staticmethod
    def _raw_copy(array: np.ndarray) -> np.ndarray:
        return np.array(array)

    # ------------------------------------------------------------------
    # Episode API
    # ------------------------------------------------------------------
    def reset(
        self,
        traces: Sequence[WorkloadTrace],
        rngs: Optional[Sequence[SeedLike]] = None,
    ) -> np.ndarray:
        """Start one episode per trace; returns (B, obs_dim) normalised obs.

        ``rngs`` optionally supplies one seed/generator per slot; slot
        ``i`` then reproduces a sequential ``env.reset(trace, rng=rngs[i])``
        episode exactly.
        """
        if not traces:
            raise EnvironmentError_("reset() needs at least one trace")
        if rngs is not None and len(rngs) != len(traces):
            raise EnvironmentError_(
                f"got {len(rngs)} rng streams for {len(traces)} traces"
            )
        self._state.reset(traces, rngs=rngs)
        batch = len(traces)
        self._batch = batch
        self._batch_arange = np.arange(batch)
        self._makespans = np.zeros(batch, dtype=int)

        # Workload features per slot and interval: [I (14), Q] with one
        # trailing "empty interval" row shared by the drain phase, so the
        # per-step observation update is a single clipped gather.
        t_max = int(self._state.trace_len.max())
        features = np.zeros((batch, t_max + 1, NUM_IO_TYPES + 1))
        empty = WorkloadInterval.empty()
        features[:, :, :NUM_IO_TYPES] = empty.ratios
        features[:, :, NUM_IO_TYPES] = empty.total_requests
        for i, trace in enumerate(traces):
            for t, interval in enumerate(trace):
                features[i, t, :NUM_IO_TYPES] = interval.ratios
                features[i, t, NUM_IO_TYPES] = interval.total_requests
        self._workload_features = features

        raw = np.empty((batch, OBSERVATION_DIM))
        raw[:, :_NUM_LEVELS] = self._state.counts
        raw[:, _NUM_LEVELS : 2 * _NUM_LEVELS] = self._state.utilization
        raw[:, 2 * _NUM_LEVELS : _IQ_START] = empty.size_vector()
        raw[:, _IQ_START:] = features[:, 0]
        self._raw = raw
        self._normalized = self.observation_encoder.normalize_batch(raw)
        return self._raw_copy(self._normalized)

    def step(self, actions: Sequence[int]) -> VectorStepResult:
        """Advance every unfinished episode by one interval under ``actions``."""
        if not self._batch:
            raise EnvironmentError_("step() called before reset()")
        state = self._state
        # Shape/range validation happens in state.step (shared with the
        # scalar simulator view); it surfaces as an environment error.
        try:
            stepped = state.step(actions)
        except SimulationError as exc:
            raise EnvironmentError_(str(exc)) from exc
        all_stepped = state.last_step_all_active
        ix = slice(None) if all_stepped else np.nonzero(stepped)[0]

        step_rewards = compute_step_rewards_batch(
            self.reward_config,
            state.incoming[ix],
            state.processed[ix],
            state.capacity[ix],
            state.utilization[ix],
            state.backlog[ix],
        )
        if all_stepped:
            rewards = step_rewards
        else:
            rewards = np.zeros(self._batch)
            rewards[ix] = step_rewards
        newly_done = stepped & state.done
        finished = np.nonzero(newly_done)[0]
        if finished.size:
            self._makespans[finished] = state.steps_taken[finished]
            rewards[finished] += compute_terminal_rewards_batch(
                self.reward_config, state.steps_taken[finished]
            )

        # Refresh the observation rows of the slots that moved; finished
        # slots keep their frozen rows.
        raw = self._raw
        raw[ix, :_NUM_LEVELS] = state.counts[ix]
        raw[ix, _NUM_LEVELS : 2 * _NUM_LEVELS] = state.utilization[ix]
        t = np.minimum(state.interval_index[ix], state.trace_len[ix])
        if all_stepped:
            raw[:, _IQ_START:] = self._workload_features[self._batch_arange, t]
        else:
            raw[ix, _IQ_START:] = self._workload_features[ix, t]
        raw_out = self._raw_copy(raw)
        # The S (size) columns never change after reset, so only the
        # dynamic columns of the stepped rows are re-normalised (bit-
        # identical to a full normalize_batch, which the reset path
        # still performs once).
        normalized = self._raw_copy(self._normalized)
        self.observation_encoder.normalize_dynamic_columns(raw_out, normalized, ix)
        self._normalized = normalized

        # ``normalized`` and ``raw_out`` are freshly allocated this step
        # and never mutated afterwards, so they are handed out directly.
        return VectorStepResult(
            observations=normalized,
            raw_observations=raw_out,
            rewards=rewards,
            dones=np.array(state.done),
            stepped=stepped,
            newly_done=newly_done,
            makespans=self._raw_copy(self._makespans),
            truncated=np.array(state.truncated),
        )

    # ------------------------------------------------------------------
    # Batched views
    # ------------------------------------------------------------------
    def observations(self) -> np.ndarray:
        """Current (B, obs_dim) normalised observation matrix."""
        self._require_reset()
        return self._raw_copy(self._normalized)

    def raw_observations(self) -> np.ndarray:
        """Current (B, obs_dim) raw observation matrix."""
        self._require_reset()
        return self._raw_copy(self._raw)

    def core_counts(self) -> np.ndarray:
        """Current (B, levels) per-level core counts (fresh copy).

        The batched collector snapshots this before each decision and
        derives all valid-action masks in one vectorized pass at the end
        of the episode batch (see ``BatchedRolloutCollector``).
        """
        self._require_reset()
        return np.array(self._state.counts)

    def valid_action_masks(self) -> np.ndarray:
        """(B, num_actions) legality masks for the next decision.

        Finished slots report a no-op-only mask: they accept no further
        migrations, and the no-op keeps batched action vectors well
        formed without consuming anything.
        """
        self._require_reset()
        masks = self.action_space.valid_mask_batch_from_counts(
            self._state.counts, self.system_config.min_cores_per_level
        )
        done = self._state.done
        if done.any():
            masks[done] = False
            masks[done, 0] = True
        return masks

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_reset(self) -> None:
        if not self._batch:
            raise EnvironmentError_("vector environment has not been reset")
