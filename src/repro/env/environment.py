"""The gym-style environment exposing the storage simulator as an MDP."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.env.action import ActionSpace
from repro.env.observation import Observation, ObservationEncoder
from repro.env.reward import RewardConfig, compute_step_reward, compute_terminal_reward
from repro.errors import EnvironmentError_
from repro.storage.cache import CacheModel
from repro.storage.metrics import EpisodeMetrics, IntervalMetrics
from repro.storage.migration import MigrationAction
from repro.storage.simulator import StorageSimulator, StorageSystemConfig
from repro.storage.workload import WorkloadTrace
from repro.utils.rng import SeedLike, new_rng


@dataclass(frozen=True)
class StepResult:
    """Return value of :meth:`StorageAllocationEnv.step`."""

    observation: Observation
    normalized_observation: np.ndarray
    reward: float
    done: bool
    info: Dict[str, object]


class StorageAllocationEnv:
    """Gym-like environment for the CPU-core allocation MDP.

    Typical usage::

        env = StorageAllocationEnv(config)
        obs = env.reset(trace)
        while True:
            result = env.step(agent.act(obs))
            obs = result.observation
            if result.done:
                break
    """

    def __init__(
        self,
        system_config: Optional[StorageSystemConfig] = None,
        reward_config: Optional[RewardConfig] = None,
        cache_model: Optional[CacheModel] = None,
        rng: SeedLike = None,
    ) -> None:
        self.system_config = system_config or StorageSystemConfig()
        self.system_config.validate()
        self.reward_config = reward_config or RewardConfig()
        self._rng = new_rng(rng)
        self.simulator = StorageSimulator(
            self.system_config, cache_model=cache_model, rng=self._rng
        )
        self.action_space = ActionSpace()
        self.observation_encoder = ObservationEncoder(self.system_config)
        self._trace: Optional[WorkloadTrace] = None
        self._last_observation: Optional[Observation] = None

    # ------------------------------------------------------------------
    # Episode API
    # ------------------------------------------------------------------
    def reset(self, trace: WorkloadTrace, rng: SeedLike = None) -> Observation:
        """Start a new episode on ``trace`` and return the initial observation."""
        if rng is not None:
            self._rng = new_rng(rng)
        self.simulator.reset(trace, rng=self._rng)
        self._trace = trace
        self._last_observation = self._build_observation()
        return self._last_observation

    def step(
        self,
        action: MigrationAction | int,
        decision_mask: Optional[np.ndarray] = None,
    ) -> StepResult:
        """Apply ``action`` for one interval and observe the outcome.

        ``decision_mask`` optionally supplies the already-computed
        legality mask for this decision (callers that consulted
        :meth:`valid_action_mask` before acting pass it through so it is
        not computed twice per step).
        """
        if self._trace is None:
            raise EnvironmentError_("step() called before reset()")
        if self.simulator.is_done:
            raise EnvironmentError_("step() called on a finished episode")

        if decision_mask is None:
            decision_mask = self.valid_action_mask()
        metrics: IntervalMetrics = self.simulator.step(action)
        done = self.simulator.is_done
        reward = compute_step_reward(self.reward_config, metrics)
        if done:
            reward += compute_terminal_reward(
                self.reward_config, self.simulator.makespan
            )

        observation = self._build_observation()
        self._last_observation = observation
        info: Dict[str, object] = {
            "interval_metrics": metrics,
            "makespan": self.simulator.makespan,
            "backlog_kb": self.simulator.backlog_kb(),
            "action_name": MigrationAction(int(action)).short_name,
            "truncated": self.simulator.episode_metrics.truncated,
            # The mask that was in force when the action was chosen, so
            # downstream consumers (FSM interpretation, evaluation) can
            # tell deliberate no-ops from silently rejected migrations.
            "valid_action_mask": decision_mask,
        }
        return StepResult(
            observation=observation,
            normalized_observation=self.observation_encoder.normalize(observation),
            reward=reward,
            done=done,
            info=info,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def observation_dim(self) -> int:
        return self.observation_encoder.dimension

    @property
    def num_actions(self) -> int:
        return self.action_space.size

    @property
    def current_observation(self) -> Observation:
        if self._last_observation is None:
            raise EnvironmentError_("environment has not been reset")
        return self._last_observation

    @property
    def episode_metrics(self) -> EpisodeMetrics:
        return self.simulator.episode_metrics

    def valid_action_mask(self) -> np.ndarray:
        return self.action_space.valid_mask_from_counts(
            self.simulator.core_counts_vector(),
            self.system_config.min_cores_per_level,
        )

    def _build_observation(self) -> Observation:
        return self.observation_encoder.build(
            core_counts=self.simulator.core_counts(),
            utilization=self.simulator.utilization(),
            workload=self.simulator.current_workload(),
        )
