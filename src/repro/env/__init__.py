"""Markov-decision-process wrapper around the storage simulator.

This package turns :class:`~repro.storage.simulator.StorageSimulator`
into the MDP of paper Section 3.1: a 35-dimensional observation
(core counts, per-level utilisation, the 14-dim S and I workload vectors
and the request count Q), a 7-way discrete action space (the migration
actions) and a reward equal to the inverse makespan.
"""

from repro.env.observation import Observation, ObservationEncoder
from repro.env.action import ActionSpace
from repro.env.reward import RewardConfig, compute_step_reward, compute_terminal_reward
from repro.env.environment import StorageAllocationEnv, StepResult
from repro.env.vector_env import VectorStorageAllocationEnv, VectorStepResult

__all__ = [
    "Observation",
    "ObservationEncoder",
    "ActionSpace",
    "RewardConfig",
    "compute_step_reward",
    "compute_terminal_reward",
    "StorageAllocationEnv",
    "StepResult",
    "VectorStorageAllocationEnv",
    "VectorStepResult",
]
