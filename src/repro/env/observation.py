"""Observation construction and normalisation.

The paper defines the observation at interval ``t`` as

    o_t = [c_N, c_K, c_R, u_N, u_K, u_R, w(t), Q_w(t)]

where ``w(t)`` contributes the 14-dim signed-size vector ``S`` and the
14-dim mixing-ratio vector ``I``.  The raw observation therefore has
3 + 3 + 14 + 14 + 1 = 35 entries.  A normalised variant (all features in
roughly [-1, 1]) is what the neural networks and the FSM similarity
matcher consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.errors import EnvironmentError_
from repro.storage.iorequest import NUM_IO_TYPES, standard_io_types
from repro.storage.levels import LEVELS, Level
from repro.storage.simulator import StorageSystemConfig
from repro.storage.workload import WorkloadInterval

OBSERVATION_DIM = 3 + 3 + NUM_IO_TYPES + NUM_IO_TYPES + 1


@dataclass(frozen=True)
class Observation:
    """One environment observation in both raw and normalised forms."""

    core_counts: np.ndarray
    utilization: np.ndarray
    size_vector: np.ndarray
    ratio_vector: np.ndarray
    total_requests: float

    def raw(self) -> np.ndarray:
        """The paper's o_t as a flat 35-vector (unnormalised)."""
        return np.concatenate(
            [
                self.core_counts,
                self.utilization,
                self.size_vector,
                self.ratio_vector,
                [self.total_requests],
            ]
        ).astype(float)

    @property
    def normal_cores(self) -> float:
        return float(self.core_counts[0])

    @property
    def kv_cores(self) -> float:
        return float(self.core_counts[1])

    @property
    def rv_cores(self) -> float:
        return float(self.core_counts[2])

    def capacity_ratio(self) -> float:
        """Ratio of NORMAL capacity to KV+RV capacity (used in Fig. 6 analysis)."""
        other = self.kv_cores + self.rv_cores
        if other <= 0:
            return float("inf")
        return self.normal_cores / other

    def read_intensity_kb(self) -> float:
        """Kilobytes of read IO described by this observation's workload."""
        sizes = np.abs(self.size_vector)
        reads = self.size_vector > 0
        return float((sizes * self.ratio_vector * reads).sum() * self.total_requests)

    def write_intensity_kb(self) -> float:
        """Kilobytes of write IO described by this observation's workload."""
        sizes = np.abs(self.size_vector)
        writes = self.size_vector < 0
        return float((sizes * self.ratio_vector * writes).sum() * self.total_requests)


class ObservationEncoder:
    """Builds :class:`Observation` objects and their normalised vectors."""

    def __init__(self, system_config: StorageSystemConfig, nominal_requests: float = None) -> None:
        system_config.validate()
        self.system_config = system_config
        sizes = np.array([t.size_kb for t in standard_io_types()])
        self._max_size_kb = float(sizes.max())
        # Scale for Q: the request count that would saturate the array if
        # every request had the mean size.  Used only for normalisation.
        mean_size = float(sizes.mean())
        default_nominal = system_config.total_capability_kb() / mean_size
        self._nominal_requests = float(nominal_requests or default_nominal)
        if self._nominal_requests <= 0:
            raise EnvironmentError_("nominal_requests must be positive")

    @property
    def dimension(self) -> int:
        return OBSERVATION_DIM

    def constants(self) -> Dict[str, float]:
        """The complete set of constants :meth:`normalize` depends on.

        Keep in sync when normalisation gains parameters — consumers are
        :meth:`is_equivalent` and the compiled serving artifact, which
        stamps these values so a serving process can verify its encoder
        normalises exactly like the one the FSM was extracted under.
        """
        return {
            "total_cores": float(self.system_config.total_cores),
            "max_size_kb": self._max_size_kb,
            "nominal_requests": self._nominal_requests,
        }

    def is_equivalent(self, other: "ObservationEncoder") -> bool:
        """Whether ``other`` normalises observations identically."""
        return self.constants() == other.constants()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(
        self,
        core_counts: Dict[Level, int],
        utilization: Dict[Level, float],
        workload: WorkloadInterval,
    ) -> Observation:
        counts = np.array([float(core_counts[level]) for level in LEVELS])
        utils = np.array([float(utilization[level]) for level in LEVELS])
        return Observation(
            core_counts=counts,
            utilization=utils,
            size_vector=workload.size_vector(),
            ratio_vector=np.array(workload.ratios, dtype=float),
            total_requests=float(workload.total_requests),
        )

    # ------------------------------------------------------------------
    # Normalisation
    # ------------------------------------------------------------------
    def normalize(self, observation: Observation) -> np.ndarray:
        """Map an observation to a float vector with entries in roughly [-1, 1]."""
        counts = observation.core_counts / float(self.system_config.total_cores)
        utils = np.clip(observation.utilization, 0.0, 1.0)
        sizes = observation.size_vector / self._max_size_kb
        ratios = observation.ratio_vector
        requests = np.array([observation.total_requests / self._nominal_requests])
        return np.concatenate([counts, utils, sizes, ratios, requests]).astype(float)

    def normalize_batch(self, raw_matrix: np.ndarray, out: np.ndarray = None) -> np.ndarray:
        """Normalise a (B, 35) matrix of raw observations in one shot.

        Every operation is elementwise (or a per-row slice of one), so row
        ``i`` of the result is bit-identical to ``normalize`` applied to
        the corresponding single observation — the property the vectorized
        environment relies on.  ``out`` optionally supplies the result
        buffer (same shape) so callers on a hot path — the decision
        server normalises every request micro-batch — can reuse one
        allocation; every column is overwritten.
        """
        raw_matrix = np.asarray(raw_matrix, dtype=float)
        if raw_matrix.ndim != 2 or raw_matrix.shape[1] != OBSERVATION_DIM:
            raise EnvironmentError_(
                f"raw matrix must have shape (B, {OBSERVATION_DIM}), got {raw_matrix.shape}"
            )
        n = NUM_IO_TYPES
        if out is None:
            out = np.empty_like(raw_matrix)
        elif out.shape != raw_matrix.shape:
            raise EnvironmentError_(
                f"out buffer shape {out.shape} does not match input {raw_matrix.shape}"
            )
        out[:, 0:3] = raw_matrix[:, 0:3] / float(self.system_config.total_cores)
        np.clip(raw_matrix[:, 3:6], 0.0, 1.0, out=out[:, 3:6])
        out[:, 6 : 6 + n] = raw_matrix[:, 6 : 6 + n] / self._max_size_kb
        out[:, 6 + n : 6 + 2 * n] = raw_matrix[:, 6 + n : 6 + 2 * n]
        out[:, 6 + 2 * n] = raw_matrix[:, 6 + 2 * n] / self._nominal_requests
        return out

    def normalize_dynamic_columns(self, raw_matrix: np.ndarray, out, rows) -> None:
        """Refresh only the columns a simulator step can change, in place.

        The S (size) columns of a raw observation are constant for the
        whole episode, so the vectorized environment normalises them once
        at reset and per step only re-normalises counts, utilisation and
        the I/Q workload features of the rows that advanced.  Each column
        uses the exact elementwise expression of :meth:`normalize_batch`,
        so the refreshed rows are bit-identical to a full renormalisation.
        """
        n = NUM_IO_TYPES
        out[rows, 0:3] = raw_matrix[rows, 0:3] / float(self.system_config.total_cores)
        # The utilisation columns are min(1, p/c) with p, c >= 0, so the
        # clip normalize_batch applies is an exact identity here and the
        # raw values pass through unchanged (bit-identical either way).
        out[rows, 3:6] = raw_matrix[rows, 3:6]
        out[rows, 6 + n : 6 + 2 * n] = raw_matrix[rows, 6 + n : 6 + 2 * n]
        out[rows, 6 + 2 * n] = raw_matrix[rows, 6 + 2 * n] / self._nominal_requests

    def normalize_raw(self, raw: np.ndarray) -> np.ndarray:
        """Normalise a raw 35-vector (as produced by :meth:`Observation.raw`)."""
        raw = np.asarray(raw, dtype=float)
        if raw.shape != (OBSERVATION_DIM,):
            raise EnvironmentError_(
                f"raw observation must have shape ({OBSERVATION_DIM},), got {raw.shape}"
            )
        observation = self.split_raw(raw)
        return self.normalize(observation)

    def split_raw(self, raw: np.ndarray) -> Observation:
        """Rebuild an :class:`Observation` from its raw 35-vector."""
        raw = np.asarray(raw, dtype=float)
        if raw.shape != (OBSERVATION_DIM,):
            raise EnvironmentError_(
                f"raw observation must have shape ({OBSERVATION_DIM},), got {raw.shape}"
            )
        n = NUM_IO_TYPES
        return Observation(
            core_counts=raw[0:3].copy(),
            utilization=raw[3:6].copy(),
            size_vector=raw[6 : 6 + n].copy(),
            ratio_vector=raw[6 + n : 6 + 2 * n].copy(),
            total_requests=float(raw[6 + 2 * n]),
        )
