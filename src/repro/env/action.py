"""Discrete action space of the environment (the 7 migration actions)."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import EnvironmentError_
from repro.storage.cores import CorePool
from repro.storage.migration import NUM_ACTIONS, MigrationAction, all_actions
from repro.utils.rng import SeedLike, new_rng


class ActionSpace:
    """The seven-action migration space with validity masking.

    The paper's action space A = {a_1, ..., a_7}: no-op plus the six
    directed single-core migrations.  ``valid_mask`` marks actions that
    would violate the minimum-cores-per-level constraint; the simulator
    treats such actions as no-ops, but agents can use the mask to avoid
    wasting decisions on them.
    """

    def __init__(self) -> None:
        self.actions: List[MigrationAction] = all_actions()
        # Action index -> source level for the six migrations (mask
        # legality only depends on whether the source can spare a core).
        self._migration_actions = [a for a in self.actions if not a.is_noop]
        self._migration_indices = np.array([int(a) for a in self._migration_actions])
        self._migration_sources = [a.source for a in self._migration_actions]
        self._source_level_columns = np.array([s.index for s in self._migration_sources])

    @property
    def size(self) -> int:
        return NUM_ACTIONS

    def contains(self, action: int) -> bool:
        return 0 <= int(action) < NUM_ACTIONS

    def to_action(self, index: int) -> MigrationAction:
        if not self.contains(index):
            raise EnvironmentError_(
                f"action index {index} outside [0, {NUM_ACTIONS})"
            )
        return MigrationAction(int(index))

    def sample(self, rng: SeedLike = None) -> MigrationAction:
        rng = new_rng(rng)
        return MigrationAction(int(rng.integers(NUM_ACTIONS)))

    def valid_mask(self, pool: CorePool) -> np.ndarray:
        """Boolean mask of actions that are currently legal migrations.

        A migration is legal iff its source level can spare a core (the
        destination never constrains it), so the mask is assembled from
        the three per-level counts instead of seven per-action queries —
        this sits on the rollout hot path.
        """
        mask = np.ones(NUM_ACTIONS, dtype=bool)
        spare = {
            level: pool.count(level) > pool.min_cores_per_level
            for level in set(self._migration_sources)
        }
        mask[self._migration_indices] = [spare[s] for s in self._migration_sources]
        return mask

    def valid_mask_batch(self, pools: Sequence[CorePool]) -> np.ndarray:
        """(B, num_actions) legality masks for a batch of core pools.

        Row ``b`` equals ``valid_mask(pools[b])``; the per-level spare
        flags are gathered once and scattered into all six migration
        columns with a single vectorized assignment.
        """
        from repro.storage.levels import LEVELS

        batch = len(pools)
        spare = np.empty((batch, len(LEVELS)), dtype=bool)
        for b, pool in enumerate(pools):
            for j, level in enumerate(LEVELS):
                spare[b, j] = pool.count(level) > pool.min_cores_per_level
        masks = np.ones((batch, NUM_ACTIONS), dtype=bool)
        masks[:, self._migration_indices] = spare[:, self._source_level_columns]
        return masks

    def names(self) -> List[str]:
        return [action.short_name for action in self.actions]
