"""Discrete action space of the environment (the 7 migration actions)."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import EnvironmentError_
from repro.storage.cores import CorePool
from repro.storage.migration import NUM_ACTIONS, MigrationAction, all_actions
from repro.utils.rng import SeedLike, new_rng


class ActionSpace:
    """The seven-action migration space with validity masking.

    The paper's action space A = {a_1, ..., a_7}: no-op plus the six
    directed single-core migrations.  ``valid_mask`` marks actions that
    would violate the minimum-cores-per-level constraint; the simulator
    treats such actions as no-ops, but agents can use the mask to avoid
    wasting decisions on them.
    """

    def __init__(self) -> None:
        self.actions: List[MigrationAction] = all_actions()
        # Action index -> source level for the six migrations (mask
        # legality only depends on whether the source can spare a core).
        self._migration_actions = [a for a in self.actions if not a.is_noop]
        self._migration_indices = np.array([int(a) for a in self._migration_actions])
        self._migration_sources = [a.source for a in self._migration_actions]
        self._source_level_columns = np.array([s.index for s in self._migration_sources])

    @property
    def size(self) -> int:
        return NUM_ACTIONS

    def contains(self, action: int) -> bool:
        return 0 <= int(action) < NUM_ACTIONS

    def to_action(self, index: int) -> MigrationAction:
        if not self.contains(index):
            raise EnvironmentError_(
                f"action index {index} outside [0, {NUM_ACTIONS})"
            )
        return MigrationAction(int(index))

    def sample(self, rng: SeedLike = None) -> MigrationAction:
        rng = new_rng(rng)
        return MigrationAction(int(rng.integers(NUM_ACTIONS)))

    def valid_mask(self, pool: CorePool) -> np.ndarray:
        """Boolean mask of actions that are currently legal migrations.

        A migration is legal iff its source level can spare a core (the
        destination never constrains it), so the mask is assembled from
        the three per-level counts instead of seven per-action queries —
        this sits on the rollout hot path.
        """
        return self.valid_mask_from_counts(
            pool.counts_vector(), pool.min_cores_per_level
        )

    def valid_mask_from_counts(self, counts, min_cores_per_level: int) -> np.ndarray:
        """Legality mask from a 3-vector of per-level core counts.

        Array-form entry point for the struct-of-arrays simulator core,
        where counts are already a row of the B-major state and no
        :class:`CorePool` object exists.
        """
        mask = np.ones(NUM_ACTIONS, dtype=bool)
        counts = np.asarray(counts)
        mask[self._migration_indices] = (
            counts[self._source_level_columns] > min_cores_per_level
        )
        return mask

    def valid_mask_batch(self, pools: Sequence[CorePool]) -> np.ndarray:
        """(B, num_actions) legality masks for a batch of core pools.

        Row ``b`` equals ``valid_mask(pools[b])``.
        """
        counts = np.array([pool.counts_vector() for pool in pools])
        min_cores = pools[0].min_cores_per_level if pools else 1
        return self.valid_mask_batch_from_counts(counts, min_cores)

    def valid_mask_batch_from_counts(
        self, counts: np.ndarray, min_cores_per_level: int
    ) -> np.ndarray:
        """(B, num_actions) legality masks from a (B, 3) counts matrix.

        The per-level spare flags are computed once and scattered into
        all six migration columns with a single vectorized assignment.
        """
        counts = np.asarray(counts)
        masks = np.ones((counts.shape[0], NUM_ACTIONS), dtype=bool)
        masks[:, self._migration_indices] = (
            counts[:, self._source_level_columns] > min_cores_per_level
        )
        return masks

    def names(self) -> List[str]:
        return [action.short_name for action in self.actions]
