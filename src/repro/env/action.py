"""Discrete action space of the environment (the 7 migration actions)."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import EnvironmentError_
from repro.storage.cores import CorePool
from repro.storage.migration import NUM_ACTIONS, MigrationAction, all_actions
from repro.utils.rng import SeedLike, new_rng


class ActionSpace:
    """The seven-action migration space with validity masking.

    The paper's action space A = {a_1, ..., a_7}: no-op plus the six
    directed single-core migrations.  ``valid_mask`` marks actions that
    would violate the minimum-cores-per-level constraint; the simulator
    treats such actions as no-ops, but agents can use the mask to avoid
    wasting decisions on them.
    """

    def __init__(self) -> None:
        self.actions: List[MigrationAction] = all_actions()

    @property
    def size(self) -> int:
        return NUM_ACTIONS

    def contains(self, action: int) -> bool:
        return 0 <= int(action) < NUM_ACTIONS

    def to_action(self, index: int) -> MigrationAction:
        if not self.contains(index):
            raise EnvironmentError_(
                f"action index {index} outside [0, {NUM_ACTIONS})"
            )
        return MigrationAction(int(index))

    def sample(self, rng: SeedLike = None) -> MigrationAction:
        rng = new_rng(rng)
        return MigrationAction(int(rng.integers(NUM_ACTIONS)))

    def valid_mask(self, pool: CorePool) -> np.ndarray:
        """Boolean mask of actions that are currently legal migrations."""
        mask = np.ones(NUM_ACTIONS, dtype=bool)
        for action in self.actions:
            if action.is_noop:
                continue
            mask[int(action)] = pool.can_migrate(action.source, action.destination)
        return mask

    def names(self) -> List[str]:
        return [action.short_name for action in self.actions]
