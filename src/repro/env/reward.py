"""Reward functions.

The paper's reward is ``1/K``, the inverse of the makespan, delivered
when the episode finishes (Section 3.1).  Pure terminal rewards make
credit assignment slow, so the environment also offers two shaped
variants used by the reward-shaping ablation:

* ``per_step_penalty`` — a constant ``-1`` per interval (minimising the
  sum of penalties is exactly minimising the makespan);
* ``backlog_penalty`` — per-step penalty proportional to the remaining
  backlog, which gives a denser signal about *how far* from finishing
  the system is;
* ``backlog_delta`` — per-step penalty proportional to the backlog
  *growth* this interval (arrivals minus processed work), a
  potential-based shaping of ``backlog_penalty`` whose credit is
  immediately attributable to the interval's allocation;
* ``utilization_balance`` — per-step penalty proportional to the
  utilisation gap between the most and least loaded level, which
  directly rewards the core placement the makespan objective needs.

The scaled-down training runs in this repository default to the shaped
modes because they learn within minutes; the paper's ``inverse_makespan``
mode is retained and selectable everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.storage.metrics import IntervalMetrics, StepValues

REWARD_MODES = (
    "inverse_makespan",
    "per_step_penalty",
    "backlog_penalty",
    "backlog_delta",
    "utilization_balance",
    "bottleneck_pressure",
)


@dataclass(frozen=True)
class RewardConfig:
    """Selects and scales the reward signal."""

    mode: str = "inverse_makespan"
    makespan_scale: float = 100.0
    step_penalty: float = 1.0
    backlog_scale: float = 1e-6
    balance_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in REWARD_MODES:
            raise ConfigurationError(
                f"unknown reward mode {self.mode!r}; expected one of {REWARD_MODES}"
            )
        if self.makespan_scale <= 0:
            raise ConfigurationError("makespan_scale must be positive")
        if self.step_penalty < 0:
            raise ConfigurationError("step_penalty must be non-negative")
        if self.backlog_scale < 0:
            raise ConfigurationError("backlog_scale must be non-negative")
        if self.balance_scale < 0:
            raise ConfigurationError("balance_scale must be non-negative")


def compute_step_reward(config: RewardConfig, metrics: IntervalMetrics) -> float:
    """Per-interval reward component (zero for the paper's terminal mode).

    Delegates to :func:`compute_step_reward_from_values` (the single
    implementation of the per-mode arithmetic) after flattening the
    metrics dicts in their own key order, pairing capacities to backlog
    keys exactly as the historical dict-based loop did.
    """
    values = StepValues(
        incoming_kb=tuple(metrics.incoming_kb.values()),
        processed_kb=tuple(metrics.processed_kb.values()),
        capacity_kb=tuple(
            metrics.capacity_kb.get(level, 0.0) for level in metrics.backlog_kb
        ),
        utilization=tuple(metrics.utilization.values()),
        backlog_kb=tuple(metrics.backlog_kb.values()),
    )
    return compute_step_reward_from_values(config, values)


def compute_step_reward_from_values(config: RewardConfig, values: StepValues) -> float:
    """Per-interval reward from a metrics-free :class:`StepValues` summary.

    This is the single implementation of the per-mode arithmetic; the
    vectorized environment feeds it the simulator's lightweight per-step
    summary directly (skipping IntervalMetrics on the rollout hot path)
    and :func:`compute_step_reward` adapts metrics records onto it.  The
    accumulation order matches the historical dict-based loops, which is
    load-bearing for sequential-vs-vectorized reward equivalence.
    """
    if config.mode == "inverse_makespan":
        return 0.0
    if config.mode == "per_step_penalty":
        return -config.step_penalty
    if config.mode == "backlog_penalty":
        return -config.step_penalty - config.backlog_scale * float(sum(values.backlog_kb))
    if config.mode == "backlog_delta":
        incoming = sum(values.incoming_kb)
        processed = sum(values.processed_kb)
        return -config.step_penalty - config.backlog_scale * (incoming - processed)
    if config.mode == "utilization_balance":
        utilization = list(values.utilization)
        imbalance = max(utilization) - min(utilization)
        return -config.step_penalty - config.balance_scale * imbalance
    if config.mode == "bottleneck_pressure":
        # Drain-time estimate of the worst level: backlog measured in
        # multiples of that level's per-interval capacity.  The makespan
        # is governed by the bottleneck level, so penalising its drain
        # time gives immediate credit for placing cores where the
        # backlog is.
        pressure = 0.0
        for backlog, capacity in zip(values.backlog_kb, values.capacity_kb):
            pressure = max(pressure, backlog / max(capacity, 1e-9))
        return -config.step_penalty - config.balance_scale * pressure
    raise ConfigurationError(f"unknown reward mode {config.mode!r}")


def compute_step_rewards_batch(
    config: RewardConfig,
    incoming_kb: np.ndarray,
    processed_kb: np.ndarray,
    capacity_kb: np.ndarray,
    utilization: np.ndarray,
    backlog_kb: np.ndarray,
) -> np.ndarray:
    """Per-interval rewards for a whole batch of per-level ``(M, 3)`` arrays.

    Row ``i`` is bit-identical to :func:`compute_step_reward_from_values`
    on the corresponding :class:`StepValues`: every reduction keeps the
    scalar implementation's left-to-right accumulation order (a plain
    Python ``sum`` over a 3-tuple is ``(v0 + v1) + v2``), so the
    vectorized environment can score all slots in one pass without
    perturbing a single reward.
    """
    batch = backlog_kb.shape[0]
    if config.mode == "inverse_makespan":
        return np.zeros(batch)
    if config.mode == "per_step_penalty":
        return np.full(batch, -config.step_penalty)
    if config.mode == "backlog_penalty":
        total = (backlog_kb[:, 0] + backlog_kb[:, 1]) + backlog_kb[:, 2]
        return -config.step_penalty - config.backlog_scale * total
    if config.mode == "backlog_delta":
        incoming = (incoming_kb[:, 0] + incoming_kb[:, 1]) + incoming_kb[:, 2]
        processed = (processed_kb[:, 0] + processed_kb[:, 1]) + processed_kb[:, 2]
        return -config.step_penalty - config.backlog_scale * (incoming - processed)
    if config.mode == "utilization_balance":
        imbalance = utilization.max(axis=1) - utilization.min(axis=1)
        return -config.step_penalty - config.balance_scale * imbalance
    if config.mode == "bottleneck_pressure":
        ratios = backlog_kb / np.maximum(capacity_kb, 1e-9)
        pressure = np.maximum(0.0, ratios.max(axis=1))
        return -config.step_penalty - config.balance_scale * pressure
    raise ConfigurationError(f"unknown reward mode {config.mode!r}")


def compute_terminal_rewards_batch(config: RewardConfig, makespans: np.ndarray) -> np.ndarray:
    """Episode-end rewards for a batch of makespans (see scalar variant)."""
    makespans = np.asarray(makespans)
    if (makespans <= 0).any():
        raise ConfigurationError(f"makespans must be positive, got {makespans}")
    if config.mode == "inverse_makespan":
        return config.makespan_scale / makespans.astype(float)
    return np.zeros(makespans.shape[0])


def compute_terminal_reward(config: RewardConfig, makespan: int) -> float:
    """Episode-end reward component.

    For the paper's mode this is ``makespan_scale / K`` (the scale keeps
    gradients at a usable magnitude without changing the argmax).
    """
    if makespan <= 0:
        raise ConfigurationError(f"makespan must be positive, got {makespan}")
    if config.mode == "inverse_makespan":
        return config.makespan_scale / float(makespan)
    return 0.0
