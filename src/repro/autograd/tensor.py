"""Core :class:`Tensor` type and differentiable primitive operations.

Design notes
------------
* A ``Tensor`` owns a float64 numpy array (``data``), an optional
  gradient accumulator (``grad``) and, if it was produced by an
  operation, a backward closure plus references to its parents.
* ``backward()`` runs a topological sort of the graph reachable from the
  output and applies each node's backward closure exactly once.
* Broadcasting is supported for elementwise arithmetic; gradients are
  reduced back to each operand's shape by :func:`_unbroadcast`.
* A module-level switch (:func:`no_grad`) disables graph construction
  for inference-only code paths (rollout collection, evaluation).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import AutogradError, ShapeError

ArrayLike = Union[float, int, Sequence, np.ndarray, "Tensor"]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded on the graph."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction within its scope."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data: np.ndarray = np.asarray(data, dtype=np.float64)
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return a copy of the underlying data as a numpy array."""
        return np.array(self.data)

    def item(self) -> float:
        """Return the value of a single-element tensor as a python float."""
        if self.data.size != 1:
            raise ShapeError(f"item() requires a single-element tensor, got shape {self.shape}")
        return float(self.data.reshape(())[()])

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label})"

    def __len__(self) -> int:
        if self.ndim == 0:
            raise ShapeError("len() of a 0-d tensor")
        return self.shape[0]

    # ------------------------------------------------------------------
    # Graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise AutogradError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise AutogradError(
                    "backward() without an explicit gradient requires a scalar output; "
                    f"got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(_as_array(grad), dtype=np.float64)
        if grad.shape != self.data.shape:
            raise ShapeError(
                f"gradient shape {grad.shape} does not match tensor shape {self.shape}"
            )

        order = self._topological_order()
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    def _topological_order(self) -> List["Tensor"]:
        order: List[Tensor] = []
        visited: set[int] = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        return order

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other_t.requires_grad:
                other_t._accumulate(grad)

        return Tensor._make(data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other_t.requires_grad:
                other_t._accumulate(-grad)

        return Tensor._make(data, (self, other_t), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        """``other - self`` without materialising ``other`` as a graph node.

        ``other`` is a constant (a scalar or array, never a Tensor —
        Python would have dispatched to its ``__sub__`` otherwise), so
        only ``self`` receives a gradient.  This keeps hot-path
        expressions like ``1.0 - update`` in the GRU cell allocation-free
        instead of building a ones-like tensor per step.
        """
        data = _as_array(other) - self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(data, (self,), backward)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other_t.data)
            if other_t.requires_grad:
                other_t._accumulate(grad * self.data)

        return Tensor._make(data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other_t.data)
            if other_t.requires_grad:
                other_t._accumulate(-grad * self.data / (other_t.data ** 2))

        return Tensor._make(data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise AutogradError("tensor exponents are not supported; use exp/log")
        exponent = float(exponent)
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1.0))

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Matrix operations
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        if self.ndim < 1 or other_t.ndim < 1:
            raise ShapeError("matmul requires at least 1-d operands")
        if self.ndim == 1 and other_t.ndim == 2:
            # Route the vector-matrix case through the batch-size-stable
            # kernel instead of BLAS gemv, which keeps single-step
            # inference bit-identical to rows of the batched vectorized
            # execution path (see functional.matmul_rows_np).
            from repro.autograd.functional import matmul_rows_np

            data = matmul_rows_np(self.data.reshape(1, -1), other_t.data)[0]
        else:
            data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other_t.data
            if a.ndim == 1 and b.ndim == 1:
                if self.requires_grad:
                    self._accumulate(grad * b)
                if other_t.requires_grad:
                    other_t._accumulate(grad * a)
                return
            if a.ndim == 1:
                a2 = a.reshape(1, -1)
                grad2 = np.asarray(grad).reshape(1, -1)
                if self.requires_grad:
                    self._accumulate((grad2 @ b.T).reshape(a.shape))
                if other_t.requires_grad:
                    other_t._accumulate(a2.T @ grad2)
                return
            if b.ndim == 1:
                b2 = b.reshape(-1, 1)
                grad2 = np.asarray(grad).reshape(*grad.shape, 1)
                if self.requires_grad:
                    self._accumulate((grad2 @ b2.T))
                if other_t.requires_grad:
                    other_t._accumulate(_unbroadcast((a.swapaxes(-1, -2) @ grad2).reshape(*a.shape[:-2], a.shape[-1]) if a.ndim > 2 else (a.T @ grad2).reshape(b.shape), b.shape))
                return
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad @ b.swapaxes(-1, -2), a.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(a.swapaxes(-1, -2) @ grad, b.shape))

        return Tensor._make(data, (self, other_t), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    def transpose(self) -> "Tensor":
        if self.ndim != 2:
            raise ShapeError(f"transpose() supports 2-d tensors, got shape {self.shape}")
        data = self.data.T

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.T)

        return Tensor._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(data, (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            denom = self.data.size
        else:
            denom = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / denom)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == expanded).astype(np.float64)
            mask = mask / mask.sum(axis=axis, keepdims=True)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(mask * g)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.asarray(grad).reshape(original))

        return Tensor._make(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data ** 2))

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(np.float64)
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient is passed through inside the interval."""
        data = np.clip(self.data, low, high)
        mask = ((self.data >= low) & (self.data <= high)).astype(np.float64)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Combination helpers (static)
    # ------------------------------------------------------------------
    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = -1) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        if not tensors:
            raise ShapeError("concat() requires at least one tensor")
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]

        def backward(grad: np.ndarray) -> None:
            offset = 0
            for tensor, size in zip(tensors, sizes):
                if tensor.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis if axis >= 0 else grad.ndim + axis] = slice(offset, offset + size)
                    tensor._accumulate(grad[tuple(slicer)])
                offset += size

        return Tensor._make(data, tuple(tensors), backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        if not tensors:
            raise ShapeError("stack() requires at least one tensor")
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            for i, tensor in enumerate(tensors):
                if tensor.requires_grad:
                    tensor._accumulate(np.take(grad, i, axis=axis))

        return Tensor._make(data, tuple(tensors), backward)

    @staticmethod
    def zeros(shape: Union[int, Tuple[int, ...]], requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(shape: Union[int, Tuple[int, ...]], requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)


def parameters_like(tensors: Iterable[Tensor]) -> List[np.ndarray]:
    """Return zero arrays shaped like each tensor (optimizer state helper)."""
    return [np.zeros_like(t.data) for t in tensors]
