"""A small reverse-mode automatic differentiation engine on numpy.

The library needs to train a recurrent actor–critic network and two
quantized-bottleneck auto-encoders.  No deep-learning framework is
available offline, so this package provides the minimal but general
autodiff substrate: a :class:`Tensor` wrapping a numpy array, a set of
differentiable operations with correct broadcasting-aware gradients,
and a numerical gradient checker used by the test-suite to validate
every op.
"""

from repro.autograd.tensor import Tensor, no_grad, is_grad_enabled
from repro.autograd import functional
from repro.autograd.grad_check import numerical_gradient, check_gradients

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "numerical_gradient",
    "check_gradients",
]
