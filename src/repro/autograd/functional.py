"""Functional operations built on :class:`~repro.autograd.tensor.Tensor`.

These are composite, numerically-stabilised operations used by the
neural-network and training code: softmax, log-softmax, cross-entropy,
mean-squared error and categorical entropy.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.autograd.tensor import Tensor
from repro.errors import ShapeError

ArrayLike = Union[Sequence, np.ndarray, Tensor]


def _ensure_tensor(value: ArrayLike) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    logits = _ensure_tensor(logits)
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    logits = _ensure_tensor(logits)
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    log_norm = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - log_norm


def cross_entropy(logits: Tensor, targets: ArrayLike) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and integer ``targets`` (N,)."""
    logits = _ensure_tensor(logits)
    if logits.ndim != 2:
        raise ShapeError(f"cross_entropy expects (N, C) logits, got shape {logits.shape}")
    target_idx = np.asarray(targets if not isinstance(targets, Tensor) else targets.data)
    target_idx = target_idx.astype(int).reshape(-1)
    if target_idx.shape[0] != logits.shape[0]:
        raise ShapeError(
            f"targets length {target_idx.shape[0]} does not match batch {logits.shape[0]}"
        )
    logp = log_softmax(logits, axis=-1)
    rows = np.arange(logits.shape[0])
    picked = logp[rows, target_idx]
    return -picked.mean()


def nll_of_actions(log_probs: Tensor, actions: ArrayLike) -> Tensor:
    """Per-sample negative log-likelihood of chosen ``actions`` given (N, C) log-probs."""
    log_probs = _ensure_tensor(log_probs)
    idx = np.asarray(actions if not isinstance(actions, Tensor) else actions.data).astype(int).reshape(-1)
    rows = np.arange(log_probs.shape[0])
    return -log_probs[rows, idx]


def mse_loss(prediction: Tensor, target: ArrayLike) -> Tensor:
    """Mean squared error between ``prediction`` and ``target``."""
    prediction = _ensure_tensor(prediction)
    target_t = _ensure_tensor(target).detach()
    diff = prediction - target_t
    return (diff * diff).mean()


def entropy(probabilities: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Mean categorical entropy of a probability tensor along ``axis``."""
    probabilities = _ensure_tensor(probabilities)
    clipped = probabilities.clip(eps, 1.0)
    per_row = -(probabilities * clipped.log()).sum(axis=axis)
    return per_row.mean()


# ----------------------------------------------------------------------
# Batched numpy inference kernels (no autograd graph)
# ----------------------------------------------------------------------
_GEMM_MIN_COLS = 7


def matmul_rows_np(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Row-batched ``x @ w`` whose rows do not depend on the batch size.

    BLAS picks different kernels (gemv, small-matrix paths, blocked gemm)
    depending on the operand shapes, and those kernels accumulate in
    different orders — so ``x[i] @ w`` is generally *not* bit-identical
    to ``(x @ w)[i]``.  Two batch-size-stable routes are used instead:

    * for reasonably wide outputs (N >= ``_GEMM_MIN_COLS``) the gemm
      kernel computes every row independently once M >= 2, so single
      rows are padded to two and sliced back — full BLAS speed;
    * for skinny outputs (N <= 2 observed unstable: BLAS switches to a
      gemv-like path whose accumulation depends on M) ``einsum`` is used,
      which reduces the contraction axis in a fixed sequential order for
      every output element regardless of batch size.

    The rollout equivalence tests (batched collector vs sequential
    collector, act_batch vs act) are the guard that this kernel split
    stays bit-stable on the host's BLAS.
    """
    x = np.asarray(x, dtype=np.float64)
    w = np.asarray(w, dtype=np.float64)
    if x.ndim != 2 or w.ndim != 2:
        raise ShapeError(
            f"matmul_rows_np expects 2-d operands, got shapes {x.shape} / {w.shape}"
        )
    if w.shape[1] < _GEMM_MIN_COLS:
        return np.einsum("ij,jk->ik", x, w)
    if x.shape[0] >= 2:
        return x @ w
    return (np.concatenate([x, x], axis=0) @ w)[: x.shape[0]]


def log_softmax_np(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax on a plain array (batched, row-wise)."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    return shifted - log_norm


def huber_loss(prediction: Tensor, target: ArrayLike, delta: float = 1.0) -> Tensor:
    """Mean Huber (smooth-L1) loss, robust alternative to MSE for value heads."""
    prediction = _ensure_tensor(prediction)
    target_t = _ensure_tensor(target).detach()
    diff = prediction - target_t
    abs_diff = diff.abs()
    quadratic = abs_diff.clip(0.0, delta)
    linear = abs_diff - quadratic
    per_elem = quadratic * quadratic * 0.5 + linear * delta
    return per_elem.mean()
