"""Numerical gradient checking utilities.

The test-suite validates every differentiable operation and every
network module against central finite differences, which keeps the
from-scratch autograd engine trustworthy.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def numerical_gradient(
    fn: Callable[[], Tensor],
    parameter: Tensor,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Estimate d fn() / d parameter with central differences.

    ``fn`` must return a scalar Tensor and must re-read ``parameter.data``
    on every call (true for any function built from autograd ops).
    """
    grad = np.zeros_like(parameter.data)
    flat = parameter.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = fn().item()
        flat[i] = original - epsilon
        minus = fn().item()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * epsilon)
    return grad


def check_gradients(
    fn: Callable[[], Tensor],
    parameters: Dict[str, Tensor] | Sequence[Tensor],
    epsilon: float = 1e-6,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> Dict[str, float]:
    """Compare analytic and numeric gradients for each parameter.

    Returns a mapping from parameter name to the maximum absolute
    difference, raising ``AssertionError`` on mismatch so tests can call
    this directly.
    """
    if not isinstance(parameters, dict):
        parameters = {f"param_{i}": p for i, p in enumerate(parameters)}

    for param in parameters.values():
        param.zero_grad()
    loss = fn()
    loss.backward()

    report: Dict[str, float] = {}
    for name, param in parameters.items():
        analytic = param.grad if param.grad is not None else np.zeros_like(param.data)
        numeric = numerical_gradient(fn, param, epsilon=epsilon)
        diff = float(np.max(np.abs(analytic - numeric))) if analytic.size else 0.0
        report[name] = diff
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            raise AssertionError(
                f"gradient mismatch for {name}: max abs diff {diff:.3e}\n"
                f"analytic={analytic}\nnumeric={numeric}"
            )
    return report
