"""Shadow-mode evaluation: serve from one backend, audit with another.

The paper's offline *fidelity* metric asks how often the extracted FSM
reproduces the GRU's decisions.  :class:`ShadowEvaluator` is the
serving-time analogue: it answers every request from the **primary**
backend (typically the compiled FSM fast path) while also running the
**shadow** backend (typically the full GRU) on the same observations
with its own resident session state, and streams agreement/divergence
counters online — per action pair, so operators can see not only *how
often* the fast path diverges but *which* decisions it trades.

It implements the same :class:`~repro.serving.server.DecisionBackend`
protocol as the backends it wraps, so shadowing is one constructor call
around an existing server setup and adds one backend invocation of
latency per batch.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.engine.backends import DecisionBackend
from repro.engine.sessions import SessionTable
from repro.storage.migration import NUM_ACTIONS, MigrationAction


class ShadowEvaluator:
    """Primary/shadow backend pair with streaming fidelity counters."""

    def __init__(self, primary: DecisionBackend, shadow: DecisionBackend) -> None:
        self.primary = primary
        self.shadow = shadow
        self.name = f"shadow({primary.name}|{shadow.name})"
        self._shadow_table: SessionTable | None = None
        # confusion[i, j]: primary decided i while the shadow decided j.
        self.confusion = np.zeros((NUM_ACTIONS, NUM_ACTIONS), dtype=np.int64)
        self.decisions = 0
        self.divergences = 0

    # ------------------------------------------------------------------
    # DecisionBackend protocol
    # ------------------------------------------------------------------
    def session_table(self, capacity: int) -> SessionTable:
        self._shadow_table = self.shadow.session_table(capacity)
        return self.primary.session_table(capacity)

    def session_state_signature(self):
        """The served state is the primary's — swaps migrate against it."""
        signature = getattr(self.primary, "session_state_signature", None)
        return signature() if signature is not None else None

    def check_encoder(self, encoder) -> None:
        for backend in (self.primary, self.shadow):
            check = getattr(backend, "check_encoder", None)
            if check is not None:
                check(encoder)

    def begin_sessions(self, table: SessionTable, slots: np.ndarray) -> None:
        self.primary.begin_sessions(table, slots)
        shadow_table = self._require_shadow_table()
        shadow_table.ensure_capacity(table.capacity)
        self.shadow.begin_sessions(shadow_table, slots)

    def end_sessions(self, table: SessionTable, slots: np.ndarray) -> None:
        for backend, owned_table in (
            (self.primary, table),
            (self.shadow, self._require_shadow_table()),
        ):
            end = getattr(backend, "end_sessions", None)
            if end is not None:
                end(owned_table, slots)

    def decide(
        self,
        table: SessionTable,
        slots: np.ndarray,
        raw: np.ndarray,
        normalized: np.ndarray,
    ) -> np.ndarray:
        actions = self.primary.decide(table, slots, raw, normalized)
        shadow_actions = self.shadow.decide(
            self._require_shadow_table(), slots, raw, normalized
        )
        np.add.at(self.confusion, (actions, shadow_actions), 1)
        self.decisions += int(actions.shape[0])
        self.divergences += int((actions != shadow_actions).sum())
        return actions

    def _require_shadow_table(self) -> SessionTable:
        if self._shadow_table is None:
            # Server-less use (tests, direct decide calls): size lazily.
            self._shadow_table = self.shadow.session_table(1024)
        return self._shadow_table

    # ------------------------------------------------------------------
    # Fidelity reporting
    # ------------------------------------------------------------------
    @property
    def fidelity(self) -> float:
        """Fraction of decisions where primary and shadow agreed."""
        if self.decisions == 0:
            return 1.0
        return 1.0 - self.divergences / self.decisions

    def divergence_pairs(self) -> Dict[str, int]:
        """Non-zero (primary -> shadow) disagreement counts by action name."""
        pairs: Dict[str, int] = {}
        rows, cols = np.nonzero(self.confusion)
        for i, j in zip(rows.tolist(), cols.tolist()):
            if i == j:
                continue
            key = (
                f"{MigrationAction(i).short_name}->{MigrationAction(j).short_name}"
            )
            pairs[key] = int(self.confusion[i, j])
        return pairs

    def summary(self) -> Dict[str, object]:
        return {
            "primary": self.primary.name,
            "shadow": self.shadow.name,
            "decisions": self.decisions,
            "divergences": self.divergences,
            "fidelity": round(self.fidelity, 6),
            "divergence_pairs": self.divergence_pairs(),
        }


class FidelityAlarm:
    """Threshold alarm over a :class:`ShadowEvaluator`'s streaming fidelity.

    Trips (once) when at least ``min_decisions`` have been observed
    since the last :meth:`reset` and the fidelity over that window falls
    below ``threshold``.  The window baseline makes the alarm usable
    after a swap: ``reset()`` and the next backend starts with a clean
    fidelity record instead of inheriting the old backend's drift.
    """

    def __init__(
        self,
        evaluator: ShadowEvaluator,
        threshold: float,
        min_decisions: int = 100,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"fidelity threshold must be in [0, 1]: {threshold}")
        self.evaluator = evaluator
        self.threshold = float(threshold)
        self.min_decisions = int(min_decisions)
        self.tripped = False
        self._baseline_decisions = evaluator.decisions
        self._baseline_divergences = evaluator.divergences

    @property
    def window_decisions(self) -> int:
        return self.evaluator.decisions - self._baseline_decisions

    @property
    def window_fidelity(self) -> float:
        decisions = self.window_decisions
        if decisions == 0:
            return 1.0
        divergences = self.evaluator.divergences - self._baseline_divergences
        return 1.0 - divergences / decisions

    def check(self) -> bool:
        """Evaluate the alarm; returns True exactly once, when it trips."""
        if self.tripped:
            return False
        if self.window_decisions < self.min_decisions:
            return False
        if self.window_fidelity < self.threshold:
            self.tripped = True
            return True
        return False

    def reset(self) -> None:
        """Re-arm with the current counters as the new window baseline."""
        self.tripped = False
        self._baseline_decisions = self.evaluator.decisions
        self._baseline_divergences = self.evaluator.divergences

    def summary(self) -> Dict[str, object]:
        return {
            "threshold": self.threshold,
            "min_decisions": self.min_decisions,
            "window_decisions": self.window_decisions,
            "window_fidelity": round(self.window_fidelity, 6),
            "tripped": self.tripped,
        }
