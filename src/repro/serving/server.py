"""The micro-batching policy decision server.

:class:`PolicyServer` is the front door of the serving subsystem: clients
open sessions, submit allocation requests (raw observation vectors) and
get back migration decisions.  Requests are not answered one at a time —
the server queues them and answers a whole *micro-batch* with one
backend call, which is what lets the batched decision kernels (compiled
FSM gathers, ``policy.act_batch``) amortise their fixed Python cost over
hundreds of concurrent sessions.

Backends implement one small :class:`DecisionBackend` protocol:

* :class:`CompiledFSMBackend` — the O(1) table-gather fast path;
* :class:`GRUPolicyBackend` — the full recurrent policy via
  ``act_batch`` (greedy), hidden rows resident in the session table;
* :class:`HeuristicAgentBackend` — any scalar :class:`~repro.agents.base.Agent`
  (one instance per session), the compatibility path for baselines.

The same protocol is what :class:`~repro.serving.shadow.ShadowEvaluator`
implements to run a second backend in shadow mode behind the primary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, runtime_checkable

import numpy as np

from repro.agents.base import Agent
from repro.drl.policy import RecurrentPolicyValueNet
from repro.env.observation import OBSERVATION_DIM, ObservationEncoder
from repro.errors import ConfigurationError
from repro.serving.compiled_fsm import CompiledFSMPolicy
from repro.serving.sessions import SessionTable
from repro.storage.migration import MigrationAction


@runtime_checkable
class DecisionBackend(Protocol):
    """What the server needs from a decision engine."""

    name: str

    def session_table(self, capacity: int) -> SessionTable:
        """A :class:`SessionTable` shaped for this backend's per-session state."""

    def begin_sessions(self, table: SessionTable, slots: np.ndarray) -> None:
        """Initialise per-session state for freshly opened ``slots``."""

    def decide(
        self,
        table: SessionTable,
        slots: np.ndarray,
        raw: np.ndarray,
        normalized: np.ndarray,
    ) -> np.ndarray:
        """Decide one action per row and advance the sessions' state."""

    # Optional protocol extensions (the server calls them when present):
    #
    # ``check_encoder(encoder)`` — raise ConfigurationError if the
    # server's observation encoder is incompatible with the backend's
    # compiled artifacts.
    # ``end_sessions(table, slots)`` — release per-session resources
    # when sessions close.
    # ``act_rollout(observations, hiddens, rngs=..., epsilon=...,
    # greedy=..., active=...)`` — full training-mode batched step
    # (sampled actions, values, explicit hidden rows).  Backends that
    # implement it can be passed to
    # :meth:`~repro.drl.rollout.BatchedRolloutCollector.collect_batch`
    # in place of a bare policy, so training rollouts, evaluation and
    # the decision server share one inference engine.


class CompiledFSMBackend:
    """Serves decisions from a :class:`CompiledFSMPolicy`'s dense tables."""

    def __init__(self, policy: CompiledFSMPolicy) -> None:
        self.policy = policy
        self.name = "compiled_fsm"

    def check_encoder(self, encoder: ObservationEncoder) -> None:
        """Refuse to serve behind an encoder the artifact was not compiled for."""
        if not self.policy.matches_encoder(encoder):
            raise ConfigurationError(
                "observation encoder normalises differently from the one the "
                "compiled FSM artifact was stamped with "
                f"(artifact constants {self.policy.encoder_constants.tolist()}, "
                f"encoder constants {encoder.constants()}) — decisions would "
                "silently diverge from the extracted policy"
            )

    def session_table(self, capacity: int) -> SessionTable:
        return SessionTable(capacity=capacity, hidden_size=0)

    def begin_sessions(self, table: SessionTable, slots: np.ndarray) -> None:
        table.state[slots] = self.policy.start_state

    def decide(
        self,
        table: SessionTable,
        slots: np.ndarray,
        raw: np.ndarray,
        normalized: np.ndarray,
    ) -> np.ndarray:
        decision = self.policy.act_batch(normalized, table.state[slots])
        table.state[slots] = decision.next_states
        return decision.actions


class GRUPolicyBackend:
    """Serves decisions from the recurrent policy (greedy ``act_batch``)."""

    def __init__(self, policy: RecurrentPolicyValueNet) -> None:
        self.policy = policy
        self.name = "gru"

    def session_table(self, capacity: int) -> SessionTable:
        return SessionTable(capacity=capacity, hidden_size=self.policy.hidden_dim())

    def begin_sessions(self, table: SessionTable, slots: np.ndarray) -> None:
        table.hidden[slots] = self.policy.initial_hidden_np(slots.shape[0])

    def decide(
        self,
        table: SessionTable,
        slots: np.ndarray,
        raw: np.ndarray,
        normalized: np.ndarray,
    ) -> np.ndarray:
        output = self.policy.act_batch(normalized, table.hidden[slots], greedy=True)
        table.hidden[slots] = output.hidden_states
        return np.asarray(output.actions, dtype=np.int64)

    def act_rollout(
        self,
        observations: np.ndarray,
        hiddens: np.ndarray,
        rngs=None,
        epsilon: float = 0.0,
        greedy: bool = False,
        active: Optional[np.ndarray] = None,
    ):
        """Training-mode batched step (the rollout collectors' hot call).

        Thin delegation to ``policy.act_batch`` — the point is that the
        same backend object (same policy instance, same fused kernel)
        serves both the decision server's :meth:`decide` and the
        trajectory collectors.
        """
        return self.policy.act_batch(
            observations,
            hiddens,
            rngs=rngs,
            epsilon=epsilon,
            greedy=greedy,
            active=active,
        )


class HeuristicAgentBackend:
    """Serves any scalar :class:`Agent` — one instance per open session.

    The per-session objects make this the compatibility path, not the
    scale path; it exists so baseline heuristics can be A/B'd (and
    shadowed) behind the same server interface as the learned policies.
    """

    def __init__(
        self, agent_factory: Callable[[], Agent], encoder: ObservationEncoder
    ) -> None:
        self.agent_factory = agent_factory
        self.encoder = encoder
        self._agents: Dict[int, Agent] = {}
        # Most factories are Agent classes with a class-level name; only
        # build a throwaway instance when the factory hides it (lambdas).
        label = getattr(agent_factory, "name", None)
        self.name = f"heuristic({label if isinstance(label, str) else agent_factory().name})"

    def session_table(self, capacity: int) -> SessionTable:
        return SessionTable(capacity=capacity, hidden_size=0)

    def begin_sessions(self, table: SessionTable, slots: np.ndarray) -> None:
        for slot in slots.tolist():
            agent = self.agent_factory()
            agent.reset()
            self._agents[int(slot)] = agent

    def end_sessions(self, table: SessionTable, slots: np.ndarray) -> None:
        for slot in slots.tolist():
            self._agents.pop(int(slot), None)

    def decide(
        self,
        table: SessionTable,
        slots: np.ndarray,
        raw: np.ndarray,
        normalized: np.ndarray,
    ) -> np.ndarray:
        actions = np.empty(slots.shape[0], dtype=np.int64)
        for i, slot in enumerate(slots.tolist()):
            observation = self.encoder.split_raw(raw[i])
            actions[i] = int(self._agents[int(slot)].act(observation))
        return actions


class DecisionTicket:
    """Handle for one queued request; resolves at the next flush."""

    __slots__ = ("session_id", "_action")

    def __init__(self, session_id: int) -> None:
        self.session_id = int(session_id)
        self._action: Optional[int] = None

    @property
    def done(self) -> bool:
        return self._action is not None

    def result(self) -> MigrationAction:
        if self._action is None:
            raise ConfigurationError(
                "decision not available yet — flush() the server first"
            )
        return MigrationAction(self._action)


@dataclass
class ServerStats:
    """Aggregate serving counters (reported by :meth:`PolicyServer.stats`)."""

    decisions: int = 0
    batches: int = 0
    max_batch: int = 0
    action_counts: np.ndarray = field(
        default_factory=lambda: np.zeros(len(MigrationAction), dtype=np.int64)
    )

    @property
    def mean_batch_size(self) -> float:
        return self.decisions / self.batches if self.batches else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "decisions": self.decisions,
            "batches": self.batches,
            "mean_batch_size": round(self.mean_batch_size, 2),
            "max_batch": self.max_batch,
            "action_counts": self.action_counts.tolist(),
        }


class PolicyServer:
    """Micro-batching request broker in front of one decision backend.

    Two usage styles share the same batched core:

    * **queued** — ``submit()`` per request returns a
      :class:`DecisionTicket`; the queue auto-flushes when it reaches
      ``max_batch_size`` (or on explicit ``flush()``), at which point
      every queued ticket resolves from one backend call;
    * **direct** — ``decide_now(session_ids, raw_matrix)`` for callers
      that already hold a whole batch (benchmarks, bulk evaluation).

    A session may have at most one request in flight; submitting a second
    one first flushes the queue, preserving the per-session decision
    order a sequential client would see.
    """

    def __init__(
        self,
        backend: DecisionBackend,
        encoder: ObservationEncoder,
        max_batch_size: int = 256,
        initial_capacity: int = 1024,
    ) -> None:
        if max_batch_size <= 0:
            raise ConfigurationError("max_batch_size must be positive")
        check_encoder = getattr(backend, "check_encoder", None)
        if check_encoder is not None:
            check_encoder(encoder)
        self.backend = backend
        self.encoder = encoder
        self.max_batch_size = int(max_batch_size)
        self.table = backend.session_table(initial_capacity)
        self._pending_slots: List[int] = []
        self._pending_raw: List[np.ndarray] = []
        self._pending_tickets: List[DecisionTicket] = []
        self._pending_set: set = set()
        self._stats = ServerStats()
        # Single-entry normalisation buffer: replaced (not accumulated)
        # when the micro-batch size changes, so steady-state serving is
        # allocation-free and fluctuating batch sizes stay bounded.
        self._normalize_buffer: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def open_sessions(self, count: int = 1) -> np.ndarray:
        slots = self.table.open(count)
        self.backend.begin_sessions(self.table, slots)
        return slots

    def open_session(self) -> int:
        return int(self.open_sessions(1)[0])

    def close_sessions(self, session_ids) -> None:
        slots = self.table.checked_slots(session_ids)
        still_pending = [s for s in slots.tolist() if s in self._pending_set]
        if still_pending:
            self.flush()
        end_sessions = getattr(self.backend, "end_sessions", None)
        if end_sessions is not None:
            end_sessions(self.table, slots)
        self.table.close(slots)

    # ------------------------------------------------------------------
    # Queued path
    # ------------------------------------------------------------------
    def submit(self, session_id: int, raw_observation: np.ndarray) -> DecisionTicket:
        """Queue one request; auto-flush when the micro-batch fills."""
        raw = np.asarray(raw_observation, dtype=float)
        if raw.shape != (OBSERVATION_DIM,):
            raise ConfigurationError(
                f"raw observation must have shape ({OBSERVATION_DIM},), got {raw.shape}"
            )
        slot = int(self.table.checked_slots(session_id)[0])
        if slot in self._pending_set:
            self.flush()
        ticket = DecisionTicket(slot)
        self._pending_slots.append(slot)
        self._pending_raw.append(raw)
        self._pending_tickets.append(ticket)
        self._pending_set.add(slot)
        if len(self._pending_slots) >= self.max_batch_size:
            self.flush()
        return ticket

    def flush(self) -> int:
        """Serve every queued request in one backend call; returns the count."""
        if not self._pending_slots:
            return 0
        slots = np.array(self._pending_slots, dtype=np.int64)
        raw = np.stack(self._pending_raw)
        tickets = self._pending_tickets
        self._pending_slots = []
        self._pending_raw = []
        self._pending_tickets = []
        self._pending_set = set()
        actions = self._decide(slots, raw)
        for ticket, action in zip(tickets, actions.tolist()):
            ticket._action = int(action)
        return int(actions.shape[0])

    @property
    def pending(self) -> int:
        return len(self._pending_slots)

    # ------------------------------------------------------------------
    # Direct path
    # ------------------------------------------------------------------
    def decide_now(self, session_ids, raw_matrix: np.ndarray) -> np.ndarray:
        """Serve one already-assembled batch (row i answers session i)."""
        slots = self.table.checked_slots(session_ids)
        raw = np.asarray(raw_matrix, dtype=float)
        if raw.ndim != 2 or raw.shape[0] != slots.shape[0]:
            raise ConfigurationError(
                f"raw matrix must have one row per session, got {raw.shape} "
                f"for {slots.shape[0]} sessions"
            )
        if slots.shape[0] > 1 and np.bincount(slots).max() > 1:
            raise ConfigurationError("decide_now batches need distinct sessions")
        return self._decide(slots, raw)

    # ------------------------------------------------------------------
    # Shared core
    # ------------------------------------------------------------------
    def _decide(self, slots: np.ndarray, raw: np.ndarray) -> np.ndarray:
        buffer = self._normalize_buffer
        if buffer is None or buffer.shape != raw.shape:
            buffer = np.empty_like(raw)
            self._normalize_buffer = buffer
        normalized = self.encoder.normalize_batch(raw, out=buffer)
        actions = self.backend.decide(self.table, slots, raw, normalized)
        # ``slots`` were validated by the caller; count directly.
        self.table.steps[slots] += 1
        self._stats.decisions += int(slots.shape[0])
        self._stats.batches += 1
        self._stats.max_batch = max(self._stats.max_batch, int(slots.shape[0]))
        self._stats.action_counts += np.bincount(
            actions, minlength=self._stats.action_counts.shape[0]
        )
        return actions

    def stats(self) -> ServerStats:
        return self._stats
