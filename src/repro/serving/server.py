"""The micro-batching policy decision server.

:class:`PolicyServer` is the front door of the serving subsystem: clients
open sessions, submit allocation requests (raw observation vectors) and
get back migration decisions.  Requests are not answered one at a time —
the server queues them and answers a whole *micro-batch* with one
backend call, which is what lets the batched decision kernels (compiled
FSM gathers, ``policy.act_batch``) amortise their fixed Python cost over
hundreds of concurrent sessions.

Backends implement the :class:`~repro.engine.backends.DecisionBackend`
protocol, which lives in :mod:`repro.engine` (the same contract drives
training rollouts and batched evaluation); this module re-exports the
standard backends so historical ``from repro.serving.server import
GRUPolicyBackend`` imports keep working:

* :class:`CompiledFSMBackend` — the O(1) table-gather fast path;
* :class:`GRUPolicyBackend` — the full recurrent policy via
  ``act_batch`` (greedy), hidden rows resident in the session table;
* :class:`HeuristicAgentBackend` — any scalar :class:`~repro.agents.base.Agent`
  (one instance per session), the compatibility path for baselines.

The same protocol is what :class:`~repro.serving.shadow.ShadowEvaluator`
implements to run a second backend in shadow mode behind the primary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.engine.backends import (
    AgentBatchBackend,
    CompiledFSMBackend,
    DecisionBackend,
    GRUPolicyBackend,
    HeuristicAgentBackend,
)
from repro.engine.sessions import GenerationLike, SessionTable
from repro.env.observation import OBSERVATION_DIM, ObservationEncoder
from repro.errors import ConfigurationError, ServingError
from repro.storage.migration import MigrationAction
from repro import telemetry

# ``LatencyHistogram`` was born in this module (PR 7) and moved to the
# telemetry package when the unified metrics registry landed; this
# re-export keeps historical ``from repro.serving.server import
# LatencyHistogram`` imports working (same pattern as the PR 8 engine
# move), pinned by tests/test_telemetry.py.
from repro.telemetry import LatencyHistogram, MetricsRegistry, Tracer

__all__ = [
    "AgentBatchBackend",
    "CompiledFSMBackend",
    "DecisionBackend",
    "DecisionTicket",
    "GRUPolicyBackend",
    "HeuristicAgentBackend",
    "LatencyHistogram",
    "PolicyServer",
    "ServerStats",
]


class DecisionTicket:
    """Handle for one queued request; resolves (or fails) at the next flush."""

    __slots__ = ("session_id", "_action", "_error")

    def __init__(self, session_id: int) -> None:
        self.session_id = int(session_id)
        self._action: Optional[int] = None
        self._error: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        """The ticket reached a terminal state (decision *or* failure)."""
        return self._action is not None or self._error is not None

    @property
    def failed(self) -> bool:
        return self._error is not None

    @property
    def action(self) -> Optional[int]:
        """The decided action index, or ``None`` (pending / failed).

        The allocation-free read the fleet load harness uses to collect
        a whole batch of resolved tickets without wrapping each decision
        in a :class:`MigrationAction` (see :meth:`result`).
        """
        return self._action

    def fail(self, error: BaseException) -> None:
        """Mark the ticket terminally failed (backend fault, drain abort)."""
        if self._action is None and self._error is None:
            self._error = error

    def result(self) -> MigrationAction:
        if self._error is not None:
            raise ServingError(
                f"decision request failed: {self._error}"
            ) from self._error
        if self._action is None:
            raise ConfigurationError(
                "decision not available yet — flush() the server first"
            )
        return MigrationAction(self._action)


@dataclass
class ServerStats:
    """Aggregate serving counters (reported by :meth:`PolicyServer.stats`)."""

    decisions: int = 0
    batches: int = 0
    max_batch: int = 0
    failed: int = 0
    swaps: int = 0
    action_counts: np.ndarray = field(
        default_factory=lambda: np.zeros(len(MigrationAction), dtype=np.int64)
    )
    # Per-request latency SLO histogram.  The in-process broker has no
    # request timestamps of its own; the network front door (and any
    # other timed caller) records arrival-to-reply latencies here.
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def mean_batch_size(self) -> float:
        return self.decisions / self.batches if self.batches else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "decisions": self.decisions,
            "batches": self.batches,
            "mean_batch_size": round(self.mean_batch_size, 2),
            "max_batch": self.max_batch,
            "failed": self.failed,
            "swaps": self.swaps,
            "action_counts": self.action_counts.tolist(),
            "latency": self.latency.as_dict(),
        }


class PolicyServer:
    """Micro-batching request broker in front of one decision backend.

    Two usage styles share the same batched core:

    * **queued** — ``submit()`` per request returns a
      :class:`DecisionTicket`; the queue auto-flushes when it reaches
      ``max_batch_size`` (or on explicit ``flush()``), at which point
      every queued ticket resolves from one backend call;
    * **direct** — ``decide_now(session_ids, raw_matrix)`` for callers
      that already hold a whole batch (benchmarks, bulk evaluation).

    A session may have at most one request in flight; submitting a second
    one first flushes the queue, preserving the per-session decision
    order a sequential client would see.
    """

    def __init__(
        self,
        backend: DecisionBackend,
        encoder: ObservationEncoder,
        max_batch_size: int = 256,
        initial_capacity: int = 1024,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if max_batch_size <= 0:
            raise ConfigurationError("max_batch_size must be positive")
        check_encoder = getattr(backend, "check_encoder", None)
        if check_encoder is not None:
            check_encoder(encoder)
        self.backend = backend
        self.encoder = encoder
        self.max_batch_size = int(max_batch_size)
        self.table = backend.session_table(initial_capacity)
        self._pending_slots: List[int] = []
        self._pending_raw: List[np.ndarray] = []
        self._pending_tickets: List[DecisionTicket] = []
        self._pending_set: set = set()
        self._stats = ServerStats()
        # Single-entry normalisation buffer: replaced (not accumulated)
        # when the micro-batch size changes, so steady-state serving is
        # allocation-free and fluctuating batch sizes stay bounded.
        self._normalize_buffer: Optional[np.ndarray] = None
        # Telemetry: instruments are resolved once here, so the hot
        # paths below record through plain attribute calls (no dict
        # lookups) and a disabled registry costs one no-op call.
        self.metrics = metrics if metrics is not None else telemetry.registry()
        self.tracer = tracer if tracer is not None else telemetry.tracer()
        self._m_decisions = self.metrics.counter(
            "serving_decisions_total", "Decisions served by the broker"
        )
        self._m_batches = self.metrics.counter(
            "serving_batches_total", "Backend micro-batch calls"
        )
        self._m_failed = self.metrics.counter(
            "serving_failed_total", "Tickets failed (backend faults + cancels)"
        )
        self._m_cancelled = self.metrics.counter(
            "serving_cancelled_total", "Tickets cancelled before a decision"
        )
        self._m_swaps = self.metrics.counter(
            "serving_swaps_total", "Blue/green backend swaps"
        )
        self._m_batch_size = self.metrics.histogram(
            "serving_batch_size",
            "Micro-batch size distribution",
            num_buckets=16,
            base=1.0,
            factor=2.0,
        )
        self._m_queue_depth = self.metrics.gauge(
            "serving_queue_depth", "Queued requests at the last flush"
        )
        self._m_queue_peak = self.metrics.gauge(
            "serving_queue_depth_peak",
            "Deepest micro-batch queue observed",
            aggregation="max",
        )
        self.metrics.gauge(
            "serving_backend_info",
            "1 for the mounted decision backend",
            backend=backend.name,
        ).set(1.0)

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def open_sessions(self, count: int = 1) -> np.ndarray:
        slots = self.table.open(count)
        self.backend.begin_sessions(self.table, slots)
        return slots

    def open_session(self) -> int:
        return int(self.open_sessions(1)[0])

    def close_sessions(
        self, session_ids, expected_generation: Optional[GenerationLike] = None
    ) -> None:
        slots = self.table.checked_slots(
            session_ids, unique=True, expected_generation=expected_generation
        )
        still_pending = [s for s in slots.tolist() if s in self._pending_set]
        if still_pending:
            self.flush()
        end_sessions = getattr(self.backend, "end_sessions", None)
        if end_sessions is not None:
            end_sessions(self.table, slots)
        self.table.close(slots)

    # ------------------------------------------------------------------
    # Queued path
    # ------------------------------------------------------------------
    def submit(
        self,
        session_id: int,
        raw_observation: np.ndarray,
        expected_generation: Optional[int] = None,
    ) -> DecisionTicket:
        """Queue one request; auto-flush when the micro-batch fills."""
        raw = np.asarray(raw_observation, dtype=float)
        if raw.shape != (OBSERVATION_DIM,):
            raise ConfigurationError(
                f"raw observation must have shape ({OBSERVATION_DIM},), got {raw.shape}"
            )
        slot = int(
            self.table.checked_slots(
                session_id, expected_generation=expected_generation
            )[0]
        )
        if slot in self._pending_set:
            self.flush()
        ticket = DecisionTicket(slot)
        self._pending_slots.append(slot)
        self._pending_raw.append(raw)
        self._pending_tickets.append(ticket)
        self._pending_set.add(slot)
        if len(self._pending_slots) >= self.max_batch_size:
            self.flush()
        return ticket

    def submit_many(
        self,
        session_ids,
        raw_matrix: np.ndarray,
        expected_generation: Optional[GenerationLike] = None,
    ) -> List[DecisionTicket]:
        """Queue one request per row with a single validation pass.

        Semantically equivalent to calling :meth:`submit` row by row
        (the queue still auto-flushes every time it reaches
        ``max_batch_size``, so micro-batch composition is identical),
        but slot validation, generation checks and the duplicate test
        run once over the whole matrix — the per-request Python cost
        that dominates fleet-scale callers submitting thousands of
        sessions per step.  Rows must name distinct sessions.
        """
        slots = self.table.checked_slots(
            session_ids, unique=True, expected_generation=expected_generation
        )
        raw = np.asarray(raw_matrix, dtype=float)
        if raw.ndim != 2 or raw.shape[0] != slots.shape[0]:
            raise ConfigurationError(
                f"raw matrix must have one row per session, got {raw.shape} "
                f"for {slots.shape[0]} sessions"
            )
        if raw.shape[1] != OBSERVATION_DIM:
            raise ConfigurationError(
                f"raw matrix must have {OBSERVATION_DIM} columns "
                f"(one observation per row), got {raw.shape[1]}"
            )
        tickets: List[DecisionTicket] = []
        pending_set = self._pending_set
        for slot, row in zip(slots.tolist(), raw):
            if slot in pending_set:
                self.flush()
                pending_set = self._pending_set
            ticket = DecisionTicket(slot)
            self._pending_slots.append(slot)
            self._pending_raw.append(row)
            self._pending_tickets.append(ticket)
            pending_set.add(slot)
            tickets.append(ticket)
            if len(self._pending_slots) >= self.max_batch_size:
                self.flush()
                pending_set = self._pending_set
        return tickets

    def cancel_pending(self, error: Optional[BaseException] = None) -> int:
        """Fail every queued ticket without calling the backend.

        The broker-side abort path: drain/shutdown flows that decide not
        to serve the queued micro-batch must route through here so the
        queue, the per-session single-in-flight set and the failure
        counters stay consistent — failing tickets from outside (e.g.
        ``ticket.fail`` on a parked network reply) would leave them in
        the pending set and ``pending`` would read nonzero after a
        "clean" drain.  Returns the number of cancelled requests.
        """
        if not self._pending_slots:
            return 0
        tickets = self._pending_tickets
        self._pending_slots = []
        self._pending_raw = []
        self._pending_tickets = []
        self._pending_set = set()
        if error is None:
            error = ServingError("request cancelled before a decision was made")
        for ticket in tickets:
            ticket.fail(error)
        self._stats.failed += len(tickets)
        self._m_failed.inc(len(tickets))
        self._m_cancelled.inc(len(tickets))
        return len(tickets)

    def flush(self) -> int:
        """Serve every queued request in one backend call; returns the count.

        A backend fault cannot strand tickets: the queue is detached
        first, and if the backend raises, every detached ticket is
        failed explicitly (``ticket.failed``/``result()`` raises
        :class:`~repro.errors.ServingError`) before the exception
        propagates — the server itself stays consistent and keeps
        serving subsequent batches.
        """
        if not self._pending_slots:
            return 0
        slots = np.array(self._pending_slots, dtype=np.int64)
        raw = np.stack(self._pending_raw)
        tickets = self._pending_tickets
        self._pending_slots = []
        self._pending_raw = []
        self._pending_tickets = []
        self._pending_set = set()
        depth = int(slots.shape[0])
        self._m_queue_depth.set(depth)
        self._m_queue_peak.set(depth)
        try:
            with self.tracer.span("broker.flush", batch=depth) as flush_span:
                actions = self._decide(slots, raw)
                flush_span.set("backend", self.backend.name)
        except Exception as exc:
            for ticket in tickets:
                ticket.fail(exc)
            self._stats.failed += len(tickets)
            self._m_failed.inc(len(tickets))
            raise
        for ticket, action in zip(tickets, actions.tolist()):
            ticket._action = int(action)
        return int(actions.shape[0])

    @property
    def pending(self) -> int:
        return len(self._pending_slots)

    # ------------------------------------------------------------------
    # Direct path
    # ------------------------------------------------------------------
    def decide_now(
        self,
        session_ids,
        raw_matrix: np.ndarray,
        expected_generation: Optional[GenerationLike] = None,
    ) -> np.ndarray:
        """Serve one already-assembled batch (row i answers session i)."""
        # ``unique=True`` is the O(batch) duplicate check — the previous
        # ``np.bincount(slots).max()`` scanned the whole table capacity
        # per call, which dominated small batches on big tables.
        slots = self.table.checked_slots(
            session_ids, unique=True, expected_generation=expected_generation
        )
        raw = np.asarray(raw_matrix, dtype=float)
        if raw.ndim != 2 or raw.shape[0] != slots.shape[0]:
            raise ConfigurationError(
                f"raw matrix must have one row per session, got {raw.shape} "
                f"for {slots.shape[0]} sessions"
            )
        if raw.shape[1] != OBSERVATION_DIM:
            raise ConfigurationError(
                f"raw matrix must have {OBSERVATION_DIM} columns "
                f"(one observation per row), got {raw.shape[1]}"
            )
        return self._decide(slots, raw)

    # ------------------------------------------------------------------
    # Shared core
    # ------------------------------------------------------------------
    def _decide(self, slots: np.ndarray, raw: np.ndarray) -> np.ndarray:
        buffer = self._normalize_buffer
        if buffer is None or buffer.shape != raw.shape:
            buffer = np.empty_like(raw)
            self._normalize_buffer = buffer
        normalized = self.encoder.normalize_batch(raw, out=buffer)
        actions = self.backend.decide(self.table, slots, raw, normalized)
        # ``slots`` were validated by the caller; count directly.
        self.table.steps[slots] += 1
        batch = int(slots.shape[0])
        self._stats.decisions += batch
        self._stats.batches += 1
        self._stats.max_batch = max(self._stats.max_batch, batch)
        self._stats.action_counts += np.bincount(
            actions, minlength=self._stats.action_counts.shape[0]
        )
        self._m_decisions.inc(batch)
        self._m_batches.inc()
        self._m_batch_size.observe(batch)
        return actions

    def stats(self) -> ServerStats:
        return self._stats

    # ------------------------------------------------------------------
    # Blue/green backend swap
    # ------------------------------------------------------------------
    def swap_backend(self, backend: DecisionBackend) -> Dict[str, object]:
        """Replace the live backend, preserving every open session handle.

        The blue/green core: the pending micro-batch is drained through
        the *old* backend first (no ticket is lost or answered by a
        half-installed engine), then the new backend gets a session
        table with the old table's slot allocation adopted verbatim —
        slots, generations and step counters all keep their meaning, so
        clients never observe the swap except through the admin audit
        record this returns.

        Per-session decision state is **migrated** when old and new
        backends report equal ``session_state_signature()`` tokens
        (same state semantics), and **reset** via the new backend's
        ``begin_sessions`` otherwise.  An incompatible observation
        encoder aborts the swap before any state changes.
        """
        check_encoder = getattr(backend, "check_encoder", None)
        if check_encoder is not None:
            check_encoder(self.encoder)  # abort-before-mutate
        flushed = self.flush()
        old_backend, old_table = self.backend, self.table
        new_table = backend.session_table(old_table.capacity)
        new_table.ensure_capacity(old_table.capacity)
        new_table.adopt_allocation(old_table)
        active = old_table.active_slots()

        old_signature = getattr(old_backend, "session_state_signature", None)
        new_signature = getattr(backend, "session_state_signature", None)
        migrated = (
            old_signature is not None
            and new_signature is not None
            and old_signature() is not None
            and old_signature() == new_signature()
        )
        if active.size:
            if migrated:
                new_table.state[active] = old_table.state[active]
                if new_table.hidden is not None and old_table.hidden is not None:
                    new_table.hidden[active] = old_table.hidden[active]
            else:
                backend.begin_sessions(new_table, active)
        end_sessions = getattr(old_backend, "end_sessions", None)
        if end_sessions is not None:
            end_sessions(old_table, active)

        self.backend = backend
        self.table = new_table
        self._stats.swaps += 1
        self._m_swaps.inc()
        self.metrics.gauge(
            "serving_backend_info", backend=old_backend.name
        ).set(0.0)
        self.metrics.gauge(
            "serving_backend_info", backend=backend.name
        ).set(1.0)
        return {
            "from_backend": old_backend.name,
            "to_backend": backend.name,
            "flushed_pending": int(flushed),
            "active_sessions": int(active.size),
            "state": "migrated" if migrated else "reset",
        }
