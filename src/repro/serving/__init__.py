"""Online policy serving: compiled decision tables, micro-batching, shadowing.

The layer that turns trained artifacts (GRU policy, extracted FSM,
observation QBN) into a high-throughput decision service:

* :mod:`repro.serving.compiled_fsm` — the FSM + quantiser flattened into
  dense numpy tables; a decision is an integer gather, bit-identical to
  the interpreted :class:`~repro.fsm.agent.FSMPolicyAgent`;
* :mod:`repro.serving.sessions` — array-backed per-session state with
  free-list slot reuse for very large concurrent session counts;
* :mod:`repro.serving.server` — the micro-batching request broker and
  the :class:`DecisionBackend` protocol its backends implement;
* :mod:`repro.serving.shadow` — run a second backend in shadow mode and
  stream serving-time fidelity counters (plus the threshold alarm that
  can drive an automatic rollback);
* :mod:`repro.serving.artifacts` — versioned artifact registry with the
  blue/green swap audit trail;
* :mod:`repro.serving.netserver` — the asyncio network front door
  (unix-socket / TCP, length-prefixed JSON or msgpack frames) and its
  pipelining client.
"""

from repro.serving.artifacts import ArtifactRecord, ArtifactRegistry
from repro.serving.compiled_fsm import CompiledDecision, CompiledFSMPolicy
from repro.serving.netserver import PolicyClient, PolicyNetServer
from repro.serving.server import (
    CompiledFSMBackend,
    DecisionBackend,
    DecisionTicket,
    GRUPolicyBackend,
    HeuristicAgentBackend,
    LatencyHistogram,
    PolicyServer,
    ServerStats,
)
from repro.serving.sessions import SessionTable
from repro.serving.shadow import FidelityAlarm, ShadowEvaluator

__all__ = [
    "ArtifactRecord",
    "ArtifactRegistry",
    "CompiledDecision",
    "CompiledFSMPolicy",
    "CompiledFSMBackend",
    "DecisionBackend",
    "DecisionTicket",
    "FidelityAlarm",
    "GRUPolicyBackend",
    "HeuristicAgentBackend",
    "LatencyHistogram",
    "PolicyClient",
    "PolicyNetServer",
    "PolicyServer",
    "ServerStats",
    "SessionTable",
    "ShadowEvaluator",
]
