"""Online policy serving: compiled decision tables, micro-batching, shadowing.

The layer that turns trained artifacts (GRU policy, extracted FSM,
observation QBN) into a high-throughput decision service.  The decision
engine itself — the :class:`DecisionBackend` protocol, the compiled FSM
tables and the session table — now lives in :mod:`repro.engine` (it is
shared with training rollouts and batched evaluation); this package
re-exports those names so historical ``from repro.serving import ...``
imports keep working.

* :mod:`repro.serving.server` — the micro-batching request broker in
  front of one :class:`DecisionBackend`;
* :mod:`repro.serving.shadow` — run a second backend in shadow mode and
  stream serving-time fidelity counters (plus the threshold alarm that
  can drive an automatic rollback);
* :mod:`repro.serving.artifacts` — versioned artifact registry with the
  blue/green swap audit trail;
* :mod:`repro.serving.netserver` — the asyncio network front door
  (unix-socket / TCP, length-prefixed JSON or msgpack frames) and its
  pipelining client.
"""

from repro.engine.backends import (
    AgentBatchBackend,
    CompiledFSMBackend,
    DecisionBackend,
    GRUPolicyBackend,
    HeuristicAgentBackend,
)
from repro.engine.compiled_fsm import CompiledDecision, CompiledFSMPolicy
from repro.engine.sessions import SessionTable
from repro.serving.artifacts import ArtifactRecord, ArtifactRegistry
from repro.serving.netserver import PolicyClient, PolicyNetServer
from repro.serving.server import (
    DecisionTicket,
    LatencyHistogram,
    PolicyServer,
    ServerStats,
)
from repro.serving.shadow import FidelityAlarm, ShadowEvaluator

__all__ = [
    "AgentBatchBackend",
    "ArtifactRecord",
    "ArtifactRegistry",
    "CompiledDecision",
    "CompiledFSMPolicy",
    "CompiledFSMBackend",
    "DecisionBackend",
    "DecisionTicket",
    "FidelityAlarm",
    "GRUPolicyBackend",
    "HeuristicAgentBackend",
    "LatencyHistogram",
    "PolicyClient",
    "PolicyNetServer",
    "PolicyServer",
    "ServerStats",
    "SessionTable",
    "ShadowEvaluator",
]
