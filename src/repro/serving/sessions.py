"""Backwards-compatible shim — the session table now lives in the engine.

The array-backed session store moved to :mod:`repro.engine.sessions` when
the decision-engine contract was promoted out of the serving layer (it is
shared by training rollouts, batched evaluation and serving alike).  This
module re-exports the public names so existing
``from repro.serving.sessions import SessionTable`` imports keep working.
"""

from repro.engine.sessions import GenerationLike, SessionTable, SlotLike

__all__ = ["GenerationLike", "SessionTable", "SlotLike"]
