"""Versioned decision artifacts and the blue/green swap audit trail.

An :class:`ArtifactRegistry` holds every backend version a serving
process may run — compiled-FSM bundles (the ``.npz`` + encoder-stamp
format :class:`~repro.serving.compiled_fsm.CompiledFSMPolicy` already
saves), GRU policy checkpoints, or pre-built
:class:`~repro.serving.server.DecisionBackend` objects — keyed by a
version string.  The registry is what makes a hot-swap an *operation*
rather than a restart: the network front door asks it for a version,
:meth:`swap` drains and swaps the live :class:`PolicyServer`, and every
swap (manual or fidelity-alarm-driven) lands in an append-only audit
trail with the compatibility decision (state migrated vs reset) that
was taken.

Artifacts registered by path load lazily and are cached: a registry can
enumerate a whole artifact store without paying a load per version, and
a version that never becomes active is never materialised.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.drl.checkpoints import load_policy
from repro.errors import ConfigurationError
from repro.engine.backends import CompiledFSMBackend, DecisionBackend, GRUPolicyBackend
from repro.engine.compiled_fsm import CompiledFSMPolicy
from repro.serving.server import PolicyServer
from repro.utils.serialization import PathLike


@dataclass
class ArtifactRecord:
    """One registered backend version."""

    version: str
    kind: str                      # "compiled_fsm" | "gru_checkpoint" | "backend"
    source: Optional[str] = None   # artifact path, when loaded from disk
    loader: Optional[Callable[[], DecisionBackend]] = None
    backend: Optional[DecisionBackend] = None

    def materialise(self) -> DecisionBackend:
        if self.backend is None:
            self.backend = self.loader()
        return self.backend

    @property
    def loaded(self) -> bool:
        return self.backend is not None

    def describe(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "kind": self.kind,
            "source": self.source,
            "loaded": self.loaded,
        }


class ArtifactRegistry:
    """Version-string-keyed store of decision backends + swap audit trail."""

    def __init__(self) -> None:
        self._records: Dict[str, ArtifactRecord] = {}
        self.audit_trail: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _add(self, record: ArtifactRecord) -> None:
        if record.version in self._records:
            raise ConfigurationError(
                f"artifact version {record.version!r} is already registered"
            )
        self._records[record.version] = record

    def register_backend(
        self, version: str, backend: DecisionBackend, kind: str = "backend"
    ) -> None:
        """Register a pre-built backend object under ``version``."""
        self._add(ArtifactRecord(version=str(version), kind=kind, backend=backend))

    def register_compiled_fsm(self, version: str, path: PathLike) -> None:
        """Register a compiled-FSM ``.npz`` bundle (lazy-loaded)."""
        self._add(
            ArtifactRecord(
                version=str(version),
                kind="compiled_fsm",
                source=str(path),
                loader=lambda: CompiledFSMBackend(CompiledFSMPolicy.load(path)),
            )
        )

    def register_policy_checkpoint(self, version: str, path: PathLike) -> None:
        """Register a GRU policy checkpoint ``.npz`` (lazy-loaded)."""
        self._add(
            ArtifactRecord(
                version=str(version),
                kind="gru_checkpoint",
                source=str(path),
                loader=lambda: GRUPolicyBackend(load_policy(path)),
            )
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def versions(self) -> List[str]:
        return list(self._records)

    def __contains__(self, version: str) -> bool:
        return version in self._records

    def record(self, version: str) -> ArtifactRecord:
        try:
            return self._records[version]
        except KeyError:
            raise ConfigurationError(
                f"unknown artifact version {version!r} "
                f"(registered: {sorted(self._records)})"
            ) from None

    def get(self, version: str) -> DecisionBackend:
        """The backend for ``version``, loading the artifact on first use."""
        return self.record(version).materialise()

    def describe(self) -> List[Dict[str, object]]:
        return [record.describe() for record in self._records.values()]

    # ------------------------------------------------------------------
    # Swap orchestration + audit
    # ------------------------------------------------------------------
    def swap(
        self,
        server: PolicyServer,
        version: str,
        from_version: Optional[str] = None,
        reason: str = "manual",
        **extra: object,
    ) -> Dict[str, object]:
        """Swap ``server`` onto ``version`` and append an audit record.

        Returns the audit record (also appended to :attr:`audit_trail`).
        A failed swap (unknown version, incompatible encoder) raises
        *before* touching the server and records nothing.
        """
        backend = self.get(version)
        swap_info = server.swap_backend(backend)
        entry: Dict[str, object] = {
            "seq": len(self.audit_trail),
            "time": time.time(),
            "event": "swap",
            "reason": reason,
            "from_version": from_version,
            "to_version": version,
            **swap_info,
            **extra,
        }
        self.audit_trail.append(entry)
        return entry

    def record_event(self, event: str, **details: object) -> Dict[str, object]:
        """Append a non-swap operational event (alarm trip, drain) to the trail."""
        entry: Dict[str, object] = {
            "seq": len(self.audit_trail),
            "time": time.time(),
            "event": event,
            **details,
        }
        self.audit_trail.append(entry)
        return entry
