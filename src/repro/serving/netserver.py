"""The asyncio network front door for the policy decision server.

Everything before this module serves decisions to *in-process* callers;
:class:`PolicyNetServer` puts the micro-batching
:class:`~repro.serving.server.PolicyServer` behind a real transport —
a unix socket and/or TCP — so separate processes (and hosts) can open
sessions and stream decision requests at it.

Wire format
-----------
Length-prefixed frames: a 5-byte header ``!BI`` (1 codec byte, 4-byte
big-endian payload length) followed by the payload.  Codec ``0`` is
JSON (UTF-8) and is always available; codec ``1`` is msgpack and is
used only when the ``msgpack`` package is importable (the server
answers each frame in the codec it arrived in, so mixed clients work).
Payloads are single dicts with an ``op`` field; requests may carry an
``id`` which is echoed verbatim in the reply, letting clients pipeline
requests and match responses out of order.

Batching
--------
``decide`` requests do **not** answer inline.  Each one becomes a
:class:`~repro.serving.server.DecisionTicket` in the broker's queue and
the connection handler parks the reply; the queue flushes either when
it reaches the broker's ``max_batch_size`` (size trigger, synchronous)
or when the server's flush loop ticks (time trigger,
``flush_interval`` seconds).  One backend call answers every parked
request of the batch, and per-request arrival→reply latency is recorded
into the :class:`~repro.serving.server.ServerStats` SLO histogram.

Back-pressure is per connection: more than ``max_inflight`` unanswered
``decide`` requests on one connection get an immediate ``BUSY`` error
reply instead of a queue slot, so one flooding client cannot grow the
queue unboundedly for everyone else.

Session handles are ``(slot, generation)`` pairs.  Every request that
names a session carries both, and the server validates the generation
against the session table — a reconnecting client holding a handle
whose slot was closed and reused gets ``STALE_SESSION``, never another
tenant's session.

Lifecycle
---------
Blue/green hot-swap: with an :class:`~repro.serving.artifacts.ArtifactRegistry`
attached, the ``swap`` admin op (or a tripped
:class:`~repro.serving.shadow.FidelityAlarm`, checked every flush tick)
drains the in-flight micro-batch and atomically installs another
artifact version — session handles survive, state migrates or resets
per the backend-compatibility check, and the registry's audit trail
records what happened.  Graceful drain (:meth:`PolicyNetServer.drain`)
stops accepting, flushes and resolves everything still queued, then
closes every connection — no ticket is ever left unresolved.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import struct
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, ReproError, ServingError, StaleSessionError
from repro.serving.artifacts import ArtifactRegistry
from repro.serving.server import DecisionTicket, PolicyServer
from repro.serving.shadow import FidelityAlarm
from repro import telemetry

try:  # optional dependency — JSON is the always-available codec
    import msgpack  # type: ignore
except ImportError:  # pragma: no cover - exercised where msgpack is absent
    msgpack = None

CODEC_JSON = 0
CODEC_MSGPACK = 1
_HEADER = struct.Struct("!BI")
MAX_FRAME_BYTES = 16 * 1024 * 1024


def encode_frame(payload: Dict[str, object], codec: int = CODEC_JSON) -> bytes:
    """Serialise one message dict into a length-prefixed frame."""
    if codec == CODEC_JSON:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    elif codec == CODEC_MSGPACK:
        if msgpack is None:
            raise ConfigurationError(
                "msgpack codec requested but the msgpack package is not installed"
            )
        body = msgpack.packb(payload, use_bin_type=True)
    else:
        raise ConfigurationError(f"unknown frame codec {codec}")
    if len(body) > MAX_FRAME_BYTES:
        raise ConfigurationError(f"frame too large: {len(body)} bytes")
    return _HEADER.pack(codec, len(body)) + body


def decode_body(codec: int, body: bytes) -> Dict[str, object]:
    """Deserialise one frame body."""
    if codec == CODEC_JSON:
        payload = json.loads(body.decode("utf-8"))
    elif codec == CODEC_MSGPACK:
        if msgpack is None:
            raise ConfigurationError(
                "peer sent a msgpack frame but the msgpack package is not installed"
            )
        payload = msgpack.unpackb(body, raw=False)
    else:
        raise ConfigurationError(f"unknown frame codec {codec}")
    if not isinstance(payload, dict):
        raise ConfigurationError("frame payload must be a mapping")
    return payload


async def read_frame(reader: asyncio.StreamReader) -> Tuple[int, Dict[str, object]]:
    """Read one frame; raises ``IncompleteReadError`` on EOF."""
    header = await reader.readexactly(_HEADER.size)
    codec, length = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ConfigurationError(f"frame too large: {length} bytes")
    body = await reader.readexactly(length)
    return codec, decode_body(codec, body)


class _Connection:
    """Per-connection bookkeeping (write side + in-flight accounting)."""

    __slots__ = ("writer", "inflight", "closed", "broken")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.inflight = 0
        self.closed = False
        self.broken = False

    def send(self, payload: Dict[str, object], codec: int) -> bool:
        """Write one reply frame; ``False`` if the connection can't take it.

        A transport that raises (peer reset the connection, writer
        already torn down) marks the connection ``broken`` so later
        replies skip it immediately instead of raising again — the
        caller settling a whole micro-batch must never lose the other
        connections' replies to one dead peer.
        """
        if self.closed or self.broken or self.writer.is_closing():
            return False
        try:
            self.writer.write(encode_frame(payload, codec))
        except (OSError, RuntimeError):
            self.broken = True
            return False
        return True


class _Waiter:
    """One parked ``decide`` reply, settled when its ticket resolves."""

    __slots__ = ("ticket", "connection", "codec", "request_id", "arrived")

    def __init__(
        self,
        ticket: DecisionTicket,
        connection: _Connection,
        codec: int,
        request_id: object,
        arrived: float,
    ) -> None:
        self.ticket = ticket
        self.connection = connection
        self.codec = codec
        self.request_id = request_id
        self.arrived = arrived


def _error_reply(code: str, message: str, request_id: object) -> Dict[str, object]:
    reply: Dict[str, object] = {"ok": False, "error": code, "message": message}
    if request_id is not None:
        reply["id"] = request_id
    return reply


class PolicyNetServer:
    """Asyncio front door feeding one :class:`PolicyServer` broker.

    Parameters
    ----------
    server:
        The in-process micro-batching broker to serve through.
    registry / active_version:
        Optional :class:`ArtifactRegistry` enabling the ``swap`` admin
        op and alarm-driven rollback; ``active_version`` labels the
        currently mounted backend in ``versions`` replies and audits.
    flush_interval:
        Time trigger of the batching loop — the longest a queued request
        waits before a flush when the size trigger never fires.
    max_inflight:
        Per-connection bound on unanswered ``decide`` requests; above
        it the server answers ``BUSY`` immediately (back-pressure).
    alarm / alarm_swap_to:
        A :class:`FidelityAlarm` checked every flush tick; when it
        trips, the server automatically hot-swaps to artifact version
        ``alarm_swap_to`` (requires ``registry``) and records the trip
        in the audit trail.
    """

    def __init__(
        self,
        server: PolicyServer,
        registry: Optional[ArtifactRegistry] = None,
        active_version: Optional[str] = None,
        flush_interval: float = 0.002,
        max_inflight: int = 64,
        alarm: Optional[FidelityAlarm] = None,
        alarm_swap_to: Optional[str] = None,
    ) -> None:
        if flush_interval <= 0:
            raise ConfigurationError("flush_interval must be positive")
        if max_inflight <= 0:
            raise ConfigurationError("max_inflight must be positive")
        if alarm_swap_to is not None and registry is None:
            raise ConfigurationError("alarm_swap_to needs an artifact registry")
        self.server = server
        self.registry = registry
        self.active_version = active_version
        self.flush_interval = float(flush_interval)
        self.max_inflight = int(max_inflight)
        self.alarm = alarm
        self.alarm_swap_to = alarm_swap_to
        self._waiters: List[_Waiter] = []
        self._connections: List[_Connection] = []
        self._listeners: List[asyncio.AbstractServer] = []
        self._flush_task: Optional[asyncio.Task] = None
        self._draining = False
        self._drained = asyncio.Event()
        self.connections_total = 0
        self.busy_rejections = 0
        self.requests_total = 0
        self.protocol_errors = 0
        self.replies_dropped = 0
        self.flush_loop_errors = 0
        self.last_flush_error: Optional[str] = None
        # Telemetry rides the broker's registry, so one ``metrics``
        # scrape exposes broker + front-door series together.  Per-op
        # and per-error-code counters are pre-resolved for every label
        # value the server can emit (bounded cardinality by design;
        # unknown ops count under "other").
        self.metrics = server.metrics
        self._m_requests: Dict[str, object] = {
            op: self.metrics.counter(
                "netserver_requests_total", "Frames dispatched, by op", op=op
            )
            for op in (
                "decide", "open", "close", "stats", "metrics",
                "versions", "swap", "audit", "ping", "other",
            )
        }
        self._m_errors: Dict[str, object] = {
            code: self.metrics.counter(
                "netserver_error_replies_total",
                "Error replies sent, by structured code",
                code=code,
            )
            for code in (
                "BUSY", "STALE_SESSION", "BAD_REQUEST",
                "BACKEND_ERROR", "DRAINING",
            )
        }
        self._m_connections = self.metrics.counter(
            "netserver_connections_total", "Connections accepted"
        )
        self._m_connections_open = self.metrics.gauge(
            "netserver_connections_open", "Currently open connections"
        )
        self._m_replies_dropped = self.metrics.counter(
            "netserver_replies_dropped_total",
            "Replies dropped on closed/broken peers",
        )
        self._m_flush_errors = self.metrics.counter(
            "netserver_flush_loop_errors_total",
            "Flush-loop ticks that hit an unexpected fault",
        )
        self._m_parked = self.metrics.gauge(
            "netserver_parked_replies", "Replies parked on pending tickets"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(
        self,
        unix_path: Optional[str] = None,
        host: Optional[str] = None,
        port: int = 0,
    ) -> Dict[str, object]:
        """Open the listeners and start the batching flush loop.

        Returns the bound endpoints (``{"unix": path, "tcp": (host, port)}``
        for whichever transports were requested).
        """
        if unix_path is None and host is None:
            raise ConfigurationError("need a unix_path and/or a TCP host to listen on")
        endpoints: Dict[str, object] = {}
        if unix_path is not None:
            listener = await asyncio.start_unix_server(self._handle, path=unix_path)
            self._listeners.append(listener)
            endpoints["unix"] = unix_path
        if host is not None:
            listener = await asyncio.start_server(self._handle, host=host, port=port)
            self._listeners.append(listener)
            bound = listener.sockets[0].getsockname()
            endpoints["tcp"] = (bound[0], bound[1])
        self._flush_task = asyncio.get_running_loop().create_task(self._flush_loop())
        return endpoints

    async def drain(self) -> Dict[str, object]:
        """Graceful shutdown: stop accepting, resolve everything, close.

        Guarantees on return: no queued request is unresolved (every
        parked reply was written, as a decision or an explicit error),
        no listener accepts, and every connection is closed.
        """
        self._draining = True
        for listener in self._listeners:
            listener.close()
        for listener in self._listeners:
            await listener.wait_closed()
        self._listeners = []
        # Flush whatever is queued; a backend fault fails those tickets,
        # which _settle turns into explicit error replies.  A wedged
        # backend raising outside the ReproError hierarchy must not
        # abort the drain half-done (listeners closed, connections
        # stranded) — flush already failed the detached tickets, so
        # record the fault and keep going.
        try:
            self.server.flush()
        except ReproError:
            pass
        except Exception as exc:
            self.flush_loop_errors += 1
            self._m_flush_errors.inc()
            self.last_flush_error = f"{type(exc).__name__}: {exc}"
        self._settle()
        # Anything still unresolved is cancelled *in the broker* —
        # failing the tickets from out here would leave them in the
        # broker's pending set, and ``pending`` would read nonzero
        # after a "clean" drain.
        if self._waiters:
            drained = ServingError("server drained before decision")
            self.server.cancel_pending(drained)
            for waiter in self._waiters:
                if not waiter.ticket.done:
                    # Backstop for a ticket the broker no longer tracks
                    # (cannot normally happen — cancel/flush resolve or
                    # fail every queued ticket).
                    waiter.ticket.fail(drained)
            self._settle()
        if self._flush_task is not None:
            self._flush_task.cancel()
            try:
                await self._flush_task
            except asyncio.CancelledError:
                pass
            self._flush_task = None
        for connection in list(self._connections):
            await self._close_connection(connection)
        self._drained.set()
        if self.registry is not None:
            self.registry.record_event(
                "drain", active_version=self.active_version,
                decisions=self.server.stats().decisions,
            )
        return self.summary()

    async def wait_drained(self) -> None:
        await self._drained.wait()

    def summary(self) -> Dict[str, object]:
        stats = self.server.stats().as_dict()
        payload: Dict[str, object] = {
            "backend": self.server.backend.name,
            "active_version": self.active_version,
            "active_sessions": self.server.table.num_active,
            "peak_sessions": self.server.table.peak_active,
            "pending": self.server.pending,
            "parked_replies": len(self._waiters),
            "connections_total": self.connections_total,
            "connections_open": len(self._connections),
            "requests_total": self.requests_total,
            "busy_rejections": self.busy_rejections,
            "protocol_errors": self.protocol_errors,
            "replies_dropped": self.replies_dropped,
            "flush_loop_errors": self.flush_loop_errors,
            "last_flush_error": self.last_flush_error,
            "draining": self._draining,
            **stats,
        }
        if self.alarm is not None:
            payload["alarm"] = self.alarm.summary()
        return payload

    # ------------------------------------------------------------------
    # Hot swap
    # ------------------------------------------------------------------
    def swap(self, version: str, reason: str = "manual") -> Dict[str, object]:
        """Blue/green swap to artifact ``version`` (drains the micro-batch)."""
        if self.registry is None:
            raise ConfigurationError("no artifact registry attached to this server")
        entry = self.registry.swap(
            self.server, version, from_version=self.active_version, reason=reason
        )
        # The drain-flush inside swap_backend resolved queued tickets;
        # settle their parked replies before new-backend traffic lands.
        self._settle()
        self.active_version = version
        if self.alarm is not None:
            # The alarm watched the *old* primary; after a swap it is
            # stale unless the evaluator is still the mounted backend.
            if self.alarm.evaluator is self.server.backend:
                self.alarm.reset()
            else:
                self.alarm = None
        return entry

    def _check_alarm(self) -> None:
        if self.alarm is None or self.alarm_swap_to is None:
            return
        if self.alarm.check():
            trip = self.alarm.summary()
            if self.registry is not None:
                self.registry.record_event(
                    "fidelity_alarm", active_version=self.active_version, **trip
                )
            self.swap(self.alarm_swap_to, reason="fidelity_alarm")

    # ------------------------------------------------------------------
    # Batching loop
    # ------------------------------------------------------------------
    async def _flush_loop(self) -> None:
        while True:
            await asyncio.sleep(self.flush_interval)
            try:
                if self.server.pending:
                    try:
                        self.server.flush()
                    except ReproError:
                        pass  # tickets were failed; replies settle below
                self._settle()
                self._check_alarm()
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                # A surprise anywhere in the tick used to kill this task
                # silently — the server then never flushed again and
                # every queued request hung until drain.  Count it,
                # remember it for ``summary()``, keep flushing.
                self.flush_loop_errors += 1
                self._m_flush_errors.inc()
                self.last_flush_error = f"{type(exc).__name__}: {exc}"

    def _settle(self) -> None:
        """Write replies for every parked request whose ticket resolved."""
        if not self._waiters:
            return
        unresolved: List[_Waiter] = []
        now = time.perf_counter()
        latency = self.server.stats().latency
        for waiter in self._waiters:
            ticket = waiter.ticket
            if not ticket.done:
                unresolved.append(waiter)
                continue
            if ticket.failed:
                reply = _error_reply(
                    "BACKEND_ERROR",
                    f"decision failed: {ticket._error}",
                    waiter.request_id,
                )
                self._m_errors["BACKEND_ERROR"].inc()
            else:
                reply = {"ok": True, "action": int(ticket.result())}
                if waiter.request_id is not None:
                    reply["id"] = waiter.request_id
            latency.record(now - waiter.arrived)
            waiter.connection.inflight -= 1
            if not waiter.connection.send(reply, waiter.codec):
                # Closed or broken peer: its reply is dropped (counted),
                # everyone else's in this batch still settles.
                self.replies_dropped += 1
                self._m_replies_dropped.inc()
        self._waiters = unresolved
        self._m_parked.set(len(unresolved))

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(writer)
        self._connections.append(connection)
        self.connections_total += 1
        self._m_connections.inc()
        self._m_connections_open.set(len(self._connections))
        try:
            while not self._draining:
                try:
                    codec, request = await read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break
                except ConfigurationError:
                    self.protocol_errors += 1
                    break
                self.requests_total += 1
                self._dispatch(connection, codec, request)
                if writer.transport.get_write_buffer_size() > 1 << 20:
                    await writer.drain()
        finally:
            await self._close_connection(connection)

    def _send_error(
        self,
        connection: _Connection,
        codec: int,
        code: str,
        message: str,
        request_id: object,
    ) -> None:
        """Send one structured error reply, counted by code."""
        counter = self._m_errors.get(code)
        if counter is not None:
            counter.inc()
        connection.send(_error_reply(code, message, request_id), codec)

    def _op_metrics(self) -> Dict[str, object]:
        """Both expositions of the shared registry, liveness gauges fresh.

        ``last_flush_error`` rides along verbatim (error strings are
        unbounded, so they never become label values — the counter
        series ``netserver_flush_loop_errors_total`` carries the count,
        this field carries the most recent cause).
        """
        self.metrics.gauge(
            "netserver_parked_replies"
        ).set(len(self._waiters))
        self.metrics.gauge(
            "netserver_connections_open"
        ).set(len(self._connections))
        self.metrics.gauge(
            "serving_sessions_active", "Open sessions in the table"
        ).set(self.server.table.num_active)
        self.metrics.gauge(
            "serving_sessions_peak",
            "Peak concurrently open sessions",
            aggregation="max",
        ).set(self.server.table.peak_active)
        self.metrics.gauge(
            "serving_pending_requests", "Requests queued in the broker"
        ).set(self.server.pending)
        snapshot = self.metrics.snapshot()
        return {
            "prometheus": snapshot.to_prometheus_text(),
            "json": snapshot.as_dict(),
            "last_flush_error": self.last_flush_error,
            "flush_loop_errors": self.flush_loop_errors,
        }

    def _dispatch(
        self, connection: _Connection, codec: int, request: Dict[str, object]
    ) -> None:
        request_id = request.get("id")
        op = request.get("op")
        counter = self._m_requests.get(op if isinstance(op, str) else "other")
        (counter if counter is not None else self._m_requests["other"]).inc()
        try:
            if op == "decide":
                self._op_decide(connection, codec, request, request_id)
            elif op == "metrics":
                exposition = self._op_metrics()
                self._reply(connection, codec, request_id, metrics=exposition)
            elif op == "open":
                count = int(request.get("count", 1))
                slots = self.server.open_sessions(count)
                generations = self.server.table.generation[slots]
                handles = [
                    [int(slot), int(generation)]
                    for slot, generation in zip(slots, generations)
                ]
                self._reply(connection, codec, request_id, handles=handles)
            elif op == "close":
                slots, generations = self._parse_handles(request)
                self.server.close_sessions(slots, expected_generation=generations)
                self._settle()  # close may have flushed pending requests
                self._reply(connection, codec, request_id, closed=len(slots))
            elif op == "stats":
                self._reply(connection, codec, request_id, stats=self.summary())
            elif op == "versions":
                if self.registry is None:
                    raise ConfigurationError("no artifact registry attached")
                self._reply(
                    connection,
                    codec,
                    request_id,
                    active=self.active_version,
                    versions=self.registry.describe(),
                )
            elif op == "swap":
                version = str(request["version"])
                entry = self.swap(version, reason=str(request.get("reason", "manual")))
                self._reply(connection, codec, request_id, swap=entry)
            elif op == "audit":
                if self.registry is None:
                    raise ConfigurationError("no artifact registry attached")
                self._reply(
                    connection, codec, request_id, audit=self.registry.audit_trail
                )
            elif op == "ping":
                self._reply(connection, codec, request_id, pong=True)
            else:
                self._send_error(
                    connection, codec, "BAD_REQUEST", f"unknown op {op!r}", request_id
                )
        except StaleSessionError as exc:
            self._send_error(connection, codec, "STALE_SESSION", str(exc), request_id)
        except ReproError as exc:
            self._send_error(connection, codec, "BAD_REQUEST", str(exc), request_id)
        except (KeyError, TypeError, ValueError) as exc:
            self.protocol_errors += 1
            self._send_error(
                connection, codec, "BAD_REQUEST",
                f"malformed request: {exc}", request_id,
            )

    def _op_decide(
        self,
        connection: _Connection,
        codec: int,
        request: Dict[str, object],
        request_id: object,
    ) -> None:
        if self._draining:
            self._send_error(
                connection, codec, "DRAINING", "server is draining", request_id
            )
            return
        if connection.inflight >= self.max_inflight:
            self.busy_rejections += 1
            self._send_error(
                connection,
                codec,
                "BUSY",
                f"connection has {connection.inflight} requests in flight "
                f"(limit {self.max_inflight})",
                request_id,
            )
            return
        slot, generation = self._parse_handle(request["handle"])
        raw = np.asarray(request["observation"], dtype=float)
        arrived = time.perf_counter()
        try:
            ticket = self.server.submit(slot, raw, expected_generation=generation)
        except (StaleSessionError, ConfigurationError):
            raise
        except ReproError:
            # A size-triggered auto-flush hit a backend fault.  The
            # *queued* tickets were failed (their parked replies settle
            # below); this request itself was never enqueued.
            self._settle()
            raise
        self._waiters.append(
            _Waiter(ticket, connection, codec, request_id, arrived)
        )
        connection.inflight += 1
        # The submit may have size-triggered (or same-session-triggered)
        # a synchronous flush; settle immediately so replies are not
        # deferred a full timer tick.
        if ticket.done or self.server.pending == 0:
            self._settle()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _reply(
        self, connection: _Connection, codec: int, request_id: object, **fields: object
    ) -> None:
        payload: Dict[str, object] = {"ok": True, **fields}
        if request_id is not None:
            payload["id"] = request_id
        connection.send(payload, codec)

    @staticmethod
    def _parse_handle(handle: object) -> Tuple[int, int]:
        if (
            not isinstance(handle, (list, tuple))
            or len(handle) != 2
        ):
            raise ConfigurationError(
                f"session handle must be a [slot, generation] pair, got {handle!r}"
            )
        return int(handle[0]), int(handle[1])

    def _parse_handles(
        self, request: Dict[str, object]
    ) -> Tuple[List[int], List[int]]:
        raw_handles = request.get("handles")
        if raw_handles is None:
            raw_handles = [request["handle"]]
        slots: List[int] = []
        generations: List[int] = []
        for handle in raw_handles:
            slot, generation = self._parse_handle(handle)
            slots.append(slot)
            generations.append(generation)
        return slots, generations

    async def _close_connection(self, connection: _Connection) -> None:
        if connection.closed:
            return
        connection.closed = True
        if connection in self._connections:
            self._connections.remove(connection)
        self._m_connections_open.set(len(self._connections))
        # Requests this connection is still waiting on keep their queue
        # slots (the micro-batch must stay intact for everyone else);
        # their replies are simply dropped at settle time.
        connection.writer.close()
        try:
            await connection.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


class PolicyClient:
    """Asyncio client for :class:`PolicyNetServer` (pipelining, id-matched).

    Every request carries an auto-assigned ``id``; a background reader
    task matches replies to futures, so any number of :meth:`decide`
    calls can be in flight concurrently on one connection (subject to
    the server's ``BUSY`` back-pressure).
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        codec: int = CODEC_JSON,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.codec = codec
        self._ids = itertools.count(1)
        self._futures: Dict[object, asyncio.Future] = {}
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    @classmethod
    async def connect_unix(cls, path: str, codec: int = CODEC_JSON) -> "PolicyClient":
        reader, writer = await asyncio.open_unix_connection(path)
        return cls(reader, writer, codec)

    @classmethod
    async def connect_tcp(
        cls, host: str, port: int, codec: int = CODEC_JSON
    ) -> "PolicyClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, codec)

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        self._fail_pending(ServingError("client closed"))

    async def __aenter__(self) -> "PolicyClient":
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    def _fail_pending(self, error: BaseException) -> None:
        futures, self._futures = self._futures, {}
        for future in futures.values():
            if not future.done():
                future.set_exception(error)

    async def _read_loop(self) -> None:
        try:
            while True:
                _codec, reply = await read_frame(self._reader)
                future = self._futures.pop(reply.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(reply)
        except (asyncio.IncompleteReadError, ConnectionResetError, ConfigurationError):
            self._fail_pending(ServingError("connection closed by server"))

    # ------------------------------------------------------------------
    # Raw request / typed helpers
    # ------------------------------------------------------------------
    async def request(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Send one request and await its id-matched reply (no raising)."""
        request_id = next(self._ids)
        payload = {**payload, "id": request_id}
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._futures[request_id] = future
        self._writer.write(encode_frame(payload, self.codec))
        await self._writer.drain()
        return await future

    async def _checked(self, payload: Dict[str, object]) -> Dict[str, object]:
        reply = await self.request(payload)
        if not reply.get("ok"):
            code = reply.get("error", "ERROR")
            if code == "STALE_SESSION":
                raise StaleSessionError(str(reply.get("message")))
            raise ServingError(f"{code}: {reply.get('message')}")
        return reply

    async def open(self, count: int = 1) -> List[Tuple[int, int]]:
        reply = await self._checked({"op": "open", "count": count})
        return [(int(s), int(g)) for s, g in reply["handles"]]

    async def decide(
        self, handle: Sequence[int], observation: Sequence[float]
    ) -> int:
        reply = await self._checked(
            {
                "op": "decide",
                "handle": [int(handle[0]), int(handle[1])],
                "observation": [float(v) for v in observation],
            }
        )
        return int(reply["action"])

    async def close_sessions(self, handles: Sequence[Sequence[int]]) -> int:
        reply = await self._checked(
            {"op": "close", "handles": [[int(h[0]), int(h[1])] for h in handles]}
        )
        return int(reply["closed"])

    async def stats(self) -> Dict[str, object]:
        return (await self._checked({"op": "stats"}))["stats"]

    async def metrics(self) -> Dict[str, object]:
        """Scrape the server's telemetry: Prometheus text + JSON snapshot."""
        return (await self._checked({"op": "metrics"}))["metrics"]

    async def versions(self) -> Dict[str, object]:
        reply = await self._checked({"op": "versions"})
        return {"active": reply["active"], "versions": reply["versions"]}

    async def swap(self, version: str, reason: str = "manual") -> Dict[str, object]:
        request = {"op": "swap", "version": version, "reason": reason}
        return (await self._checked(request))["swap"]

    async def audit(self) -> List[Dict[str, object]]:
        return (await self._checked({"op": "audit"}))["audit"]

    async def ping(self) -> bool:
        return bool((await self._checked({"op": "ping"})).get("pong"))
