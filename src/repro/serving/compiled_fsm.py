"""Backwards-compatible shim — the compiled FSM now lives in the engine.

The dense-table compilation of the extracted FSM moved to
:mod:`repro.engine.compiled_fsm` when the decision-engine contract was
promoted out of the serving layer (the same tables now answer training
rollouts, batched evaluation and serving).  This module re-exports the
public names so existing ``from repro.serving.compiled_fsm import
CompiledFSMPolicy`` imports (and artifact load paths) keep working.
"""

from repro.engine.compiled_fsm import (
    ARTIFACT_FORMAT_VERSION,
    CompiledDecision,
    CompiledFSMPolicy,
)

__all__ = ["ARTIFACT_FORMAT_VERSION", "CompiledDecision", "CompiledFSMPolicy"]
