"""Exception hierarchy for the repro library.

Every error raised intentionally by the library derives from
:class:`ReproError` so that callers can catch library problems without
accidentally swallowing programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """A configuration object carries invalid or inconsistent values."""


class SimulationError(ReproError):
    """The storage simulator was driven into an invalid state."""


class WorkloadError(ReproError):
    """A workload trace or specification is malformed."""


class EnvironmentError_(ReproError):
    """The RL environment was used incorrectly (e.g. step before reset)."""


class AutogradError(ReproError):
    """An invalid operation was requested on the autograd graph."""


class ShapeError(AutogradError):
    """Tensor operands have incompatible shapes."""


class TrainingError(ReproError):
    """A training loop was configured or driven incorrectly."""


class ExtractionError(ReproError):
    """FSM extraction could not be completed (e.g. empty rollouts)."""


class SerializationError(ReproError):
    """An artefact could not be saved or loaded."""


class ServingError(ReproError):
    """A serving-layer request failed at runtime (backend fault, drain)."""


class StaleSessionError(ServingError):
    """A session handle's generation no longer matches its slot.

    Raised when a caller presents ``(slot, generation)`` for a slot that
    was closed and reopened since the handle was issued — acting on it
    would steer a *different* client's session.
    """
