"""Synthesis of "real" customer traces by snippet sampling.

The paper has access to only a handful of real customer traces, so it
"simulate[s] real workload traces by sampling snippets from the
aforementioned standard workloads" (Section 4.1), producing 50 such
traces.  :class:`RealTraceSampler` reproduces that procedure: a real
trace is a concatenation of randomly chosen snippets cut from randomly
chosen standard traces, optionally re-scaled per snippet so intensity
jumps across snippet boundaries (which is what makes these traces
"harder" than the stationary standard ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import WorkloadError
from repro.storage.workload import WorkloadTrace
from repro.utils.rng import SeedLike, new_rng


@dataclass
class SamplerConfig:
    """Parameters controlling how real traces are assembled from snippets."""

    snippets_per_trace: int = 3
    min_snippet_length: int = 20
    max_snippet_length: int = 40
    intensity_rescale_low: float = 0.8
    intensity_rescale_high: float = 1.25

    def validate(self) -> None:
        if self.snippets_per_trace <= 0:
            raise WorkloadError("snippets_per_trace must be positive")
        if not 0 < self.min_snippet_length <= self.max_snippet_length:
            raise WorkloadError(
                "snippet lengths must satisfy 0 < min <= max, "
                f"got min={self.min_snippet_length}, max={self.max_snippet_length}"
            )
        if not 0 < self.intensity_rescale_low <= self.intensity_rescale_high:
            raise WorkloadError(
                "intensity rescale bounds must satisfy 0 < low <= high"
            )


class RealTraceSampler:
    """Builds simulated "real" customer traces from a suite of standard traces."""

    def __init__(
        self,
        standard_traces: Dict[str, WorkloadTrace] | Sequence[WorkloadTrace],
        config: Optional[SamplerConfig] = None,
        rng: SeedLike = None,
    ) -> None:
        if isinstance(standard_traces, dict):
            traces = list(standard_traces.values())
        else:
            traces = list(standard_traces)
        if not traces:
            raise WorkloadError("sampler needs at least one standard trace")
        for trace in traces:
            if len(trace) == 0:
                raise WorkloadError(f"standard trace {trace.name!r} is empty")
        self.standard_traces = traces
        self.config = config or SamplerConfig()
        self.config.validate()
        self._rng = new_rng(rng)

    def sample_trace(self, name: str, rng: SeedLike = None) -> WorkloadTrace:
        """Assemble one simulated real trace."""
        rng = new_rng(rng) if rng is not None else self._rng
        snippets: List[WorkloadTrace] = []
        provenance: List[Dict[str, object]] = []
        for snippet_index in range(self.config.snippets_per_trace):
            source = self.standard_traces[int(rng.integers(len(self.standard_traces)))]
            max_len = min(self.config.max_snippet_length, len(source))
            min_len = min(self.config.min_snippet_length, max_len)
            length = int(rng.integers(min_len, max_len + 1))
            start_max = len(source) - length
            start = int(rng.integers(0, start_max + 1)) if start_max > 0 else 0
            snippet = source.slice(start, start + length)
            scale = float(
                rng.uniform(
                    self.config.intensity_rescale_low, self.config.intensity_rescale_high
                )
            )
            snippet = WorkloadTrace(
                name=f"{name}/snippet{snippet_index}",
                intervals=[interval.scaled(scale) for interval in snippet],
                metadata=snippet.metadata,
            )
            snippets.append(snippet)
            provenance.append(
                {
                    "source": source.name,
                    "start": start,
                    "length": length,
                    "scale": scale,
                }
            )
        trace = WorkloadTrace.concatenate(snippets, name=name)
        trace.metadata.update({"kind": "real", "snippets": provenance})
        return trace

    def sample_many(
        self, count: int, prefix: str = "real", rng: SeedLike = None
    ) -> List[WorkloadTrace]:
        """Generate ``count`` real traces (the paper generates 50)."""
        if count <= 0:
            raise WorkloadError(f"count must be positive, got {count}")
        rng = new_rng(rng) if rng is not None else self._rng
        return [self.sample_trace(f"{prefix}/{i:03d}", rng=rng) for i in range(count)]
