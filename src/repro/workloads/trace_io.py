"""Persistence of workload traces (single traces and bundles) as JSON files."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Union

import numpy as np

from repro.errors import SerializationError, WorkloadError
from repro.storage.workload import WorkloadTrace

PathLike = Union[str, Path]
_FORMAT_VERSION = 1


def _trace_to_payload(trace: WorkloadTrace) -> Dict[str, object]:
    arrays = trace.to_arrays()
    return {
        "format_version": _FORMAT_VERSION,
        "name": trace.name,
        "metadata": trace.metadata,
        "ratios": arrays["ratios"].tolist(),
        "total_requests": arrays["total_requests"].tolist(),
    }


def _payload_to_trace(payload: Dict[str, object]) -> WorkloadTrace:
    try:
        version = int(payload.get("format_version", 0))
        if version != _FORMAT_VERSION:
            raise WorkloadError(f"unsupported trace format version {version}")
        return WorkloadTrace.from_arrays(
            name=str(payload["name"]),
            ratios=np.asarray(payload["ratios"], dtype=float),
            total_requests=np.asarray(payload["total_requests"], dtype=float),
            metadata=dict(payload.get("metadata", {})),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WorkloadError(f"malformed trace payload: {exc}") from exc


def save_trace(path: PathLike, trace: WorkloadTrace) -> None:
    """Write one trace to ``path`` as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        with path.open("w", encoding="utf-8") as fh:
            json.dump(_trace_to_payload(trace), fh)
    except OSError as exc:
        raise SerializationError(f"could not write trace to {path}: {exc}") from exc


def load_trace(path: PathLike) -> WorkloadTrace:
    """Load one trace written by :func:`save_trace`."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"could not read trace from {path}: {exc}") from exc
    return _payload_to_trace(payload)


def save_trace_bundle(path: PathLike, traces: Iterable[WorkloadTrace]) -> None:
    """Write several traces to one JSON file (e.g. the 50 real traces)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format_version": _FORMAT_VERSION,
        "traces": [_trace_to_payload(trace) for trace in traces],
    }
    try:
        with path.open("w", encoding="utf-8") as fh:
            json.dump(payload, fh)
    except OSError as exc:
        raise SerializationError(f"could not write trace bundle to {path}: {exc}") from exc


def load_trace_bundle(path: PathLike) -> List[WorkloadTrace]:
    """Load a bundle written by :func:`save_trace_bundle`."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"could not read trace bundle from {path}: {exc}") from exc
    try:
        entries = payload["traces"]
    except (TypeError, KeyError) as exc:
        raise WorkloadError(f"malformed trace bundle in {path}") from exc
    return [_payload_to_trace(entry) for entry in entries]
