"""Workload profile specifications.

A :class:`WorkloadProfile` captures the summarised characteristics the
paper collects from customer investigations: dominant IO sizes, the
read/write split, the overall intensity, its period and trend, and how
bursty the arrival process is.  A profile plus a random generator fully
determines a synthetic trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.storage.iorequest import NUM_IO_TYPES, standard_io_types

_NUM_SIZES = NUM_IO_TYPES // 2


@dataclass(frozen=True)
class IntensityModel:
    """Deterministic intensity (requests-per-interval multiplier) over time.

    ``level(t) = base * (1 + amplitude * sin(2*pi*t/period + phase)) + trend * t``
    clipped to be non-negative.  ``base`` is relative: 1.0 means the
    generator's calibrated nominal load.
    """

    base: float = 1.0
    amplitude: float = 0.0
    period: int = 24
    phase: float = 0.0
    trend: float = 0.0

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise WorkloadError(f"intensity base must be positive, got {self.base}")
        if not 0.0 <= self.amplitude <= 1.0:
            raise WorkloadError(f"amplitude must be in [0, 1], got {self.amplitude}")
        if self.period <= 0:
            raise WorkloadError(f"period must be positive, got {self.period}")

    def level(self, t: int) -> float:
        value = self.base * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period + self.phase)
        )
        value += self.trend * t
        return max(0.0, value)

    def levels(self, duration: int) -> np.ndarray:
        return np.array([self.level(t) for t in range(duration)])


@dataclass(frozen=True)
class WorkloadProfile:
    """A named business-model workload class (one Vdbench configuration).

    Attributes
    ----------
    name / description:
        Identification of the business model (e.g. ``"oltp_database"``).
    read_fraction:
        Fraction of requests that are reads.
    read_size_weights / write_size_weights:
        Unnormalised weights over the 7 block sizes
        (4K, 8K, 16K, 32K, 64K, 128K, 256K) for reads and writes.
    intensity:
        The :class:`IntensityModel` describing load over time.
    burstiness:
        Multiplicative lognormal noise sigma applied per interval.
    mix_jitter:
        Dirichlet-style jitter applied to the IO mix each interval so the
        ratio vector is not constant over the trace.
    default_duration:
        Default number of intervals (``T``) for a standard trace.
    """

    name: str
    description: str
    read_fraction: float
    read_size_weights: Sequence[float]
    write_size_weights: Sequence[float]
    intensity: IntensityModel = field(default_factory=IntensityModel)
    burstiness: float = 0.1
    mix_jitter: float = 0.05
    default_duration: int = 96

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("profile name must be non-empty")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise WorkloadError(
                f"read_fraction must be in [0, 1], got {self.read_fraction}"
            )
        for attr in ("read_size_weights", "write_size_weights"):
            weights = np.asarray(getattr(self, attr), dtype=float)
            if weights.shape != (_NUM_SIZES,):
                raise WorkloadError(
                    f"{attr} must have {_NUM_SIZES} entries, got shape {weights.shape}"
                )
            if np.any(weights < 0) or weights.sum() <= 0:
                raise WorkloadError(f"{attr} must be non-negative with a positive sum")
        if self.burstiness < 0:
            raise WorkloadError(f"burstiness must be non-negative, got {self.burstiness}")
        if self.mix_jitter < 0:
            raise WorkloadError(f"mix_jitter must be non-negative, got {self.mix_jitter}")
        if self.default_duration <= 0:
            raise WorkloadError(
                f"default_duration must be positive, got {self.default_duration}"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def base_ratios(self) -> np.ndarray:
        """The mean ``I`` vector over the 14 IO types implied by the profile."""
        read_weights = np.asarray(self.read_size_weights, dtype=float)
        write_weights = np.asarray(self.write_size_weights, dtype=float)
        read_part = self.read_fraction * read_weights / read_weights.sum()
        write_part = (1.0 - self.read_fraction) * write_weights / write_weights.sum()
        ratios = np.concatenate([read_part, write_part])
        total = ratios.sum()
        if total <= 0:
            raise WorkloadError(f"profile {self.name} produces an empty IO mix")
        return ratios / total

    def mean_request_size_kb(self) -> float:
        """Expected request size in KB under the base mix."""
        sizes = np.array([t.size_kb for t in standard_io_types()])
        return float((self.base_ratios() * sizes).sum())

    def write_byte_fraction(self) -> float:
        """Fraction of IO *bytes* (not requests) that are writes."""
        sizes = np.array([t.size_kb for t in standard_io_types()])
        kinds = np.array([t.is_write for t in standard_io_types()])
        ratios = self.base_ratios()
        total = float((ratios * sizes).sum())
        write = float((ratios * sizes * kinds).sum())
        return write / total if total > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "description": self.description,
            "read_fraction": self.read_fraction,
            "read_size_weights": list(map(float, self.read_size_weights)),
            "write_size_weights": list(map(float, self.write_size_weights)),
            "intensity": {
                "base": self.intensity.base,
                "amplitude": self.intensity.amplitude,
                "period": self.intensity.period,
                "phase": self.intensity.phase,
                "trend": self.intensity.trend,
            },
            "burstiness": self.burstiness,
            "mix_jitter": self.mix_jitter,
            "default_duration": self.default_duration,
        }
