"""Generation of standard (Vdbench-style) workload traces from profiles."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.storage.simulator import StorageSystemConfig
from repro.storage.workload import WorkloadInterval, WorkloadTrace
from repro.workloads.profiles import STANDARD_PROFILES, get_profile
from repro.workloads.spec import WorkloadProfile
from repro.utils.rng import SeedLike, new_rng


@dataclass
class GeneratorConfig:
    """Calibration of generated traces against a storage-system configuration.

    ``target_load`` is the fraction of the array's *total* ideal
    processing capability (Definition 2: ``N * m`` per interval) that the
    generated workload demands on average, counting the extra KV/RV work
    induced by writes and cache misses.  Values near 1.0 keep the system
    near saturation, which is where allocation policy matters; values
    well above 1.0 guarantee a backlog (and a makespan exceeding ``T``).
    """

    target_load: float = 1.0
    assumed_cache_miss_rate: float = 0.3
    min_requests: float = 1.0

    def validate(self) -> None:
        if self.target_load <= 0:
            raise WorkloadError(f"target_load must be positive, got {self.target_load}")
        if not 0.0 <= self.assumed_cache_miss_rate <= 1.0:
            raise WorkloadError("assumed_cache_miss_rate must be in [0, 1]")
        if self.min_requests < 0:
            raise WorkloadError("min_requests must be non-negative")


class StandardWorkloadGenerator:
    """Synthesises standard workload traces from business-model profiles.

    The generator is the stand-in for Vdbench: a profile describes the IO
    mix and intensity shape; the generator calibrates absolute request
    counts against the simulated array's capability and adds per-interval
    stochasticity (lognormal burstiness and Dirichlet mix jitter).
    """

    def __init__(
        self,
        system_config: Optional[StorageSystemConfig] = None,
        generator_config: Optional[GeneratorConfig] = None,
        rng: SeedLike = None,
    ) -> None:
        self.system_config = system_config or StorageSystemConfig()
        self.system_config.validate()
        self.generator_config = generator_config or GeneratorConfig()
        self.generator_config.validate()
        self._rng = new_rng(rng)

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    def nominal_requests_per_interval(self, profile: WorkloadProfile) -> float:
        """Request count that loads the array at ``target_load`` under this profile."""
        mean_size = profile.mean_request_size_kb()
        write_fraction = profile.write_byte_fraction()
        read_fraction = 1.0 - write_fraction
        cfg = self.system_config
        miss = self.generator_config.assumed_cache_miss_rate
        # KB of work across all three levels generated per KB of IO payload.
        demand_multiplier = (
            1.0
            + write_fraction * (cfg.kv_write_factor + cfg.rv_write_factor)
            + read_fraction * miss * (cfg.kv_read_miss_factor + cfg.rv_read_miss_factor)
        )
        capability = cfg.total_capability_kb()
        target_payload_kb = self.generator_config.target_load * capability / demand_multiplier
        requests = target_payload_kb / mean_size
        return max(self.generator_config.min_requests, requests)

    # ------------------------------------------------------------------
    # Trace generation
    # ------------------------------------------------------------------
    def generate(
        self,
        profile: WorkloadProfile | str,
        duration: Optional[int] = None,
        name: Optional[str] = None,
        rng: SeedLike = None,
    ) -> WorkloadTrace:
        """Generate one standard trace for ``profile`` lasting ``duration`` intervals."""
        if isinstance(profile, str):
            profile = get_profile(profile)
        duration = profile.default_duration if duration is None else int(duration)
        if duration <= 0:
            raise WorkloadError(f"duration must be positive, got {duration}")
        rng = new_rng(rng) if rng is not None else self._rng

        base_ratios = profile.base_ratios()
        nominal_requests = self.nominal_requests_per_interval(profile)
        intensity = profile.intensity.levels(duration)

        intervals: List[WorkloadInterval] = []
        for t in range(duration):
            ratios = self._jitter_ratios(base_ratios, profile.mix_jitter, rng)
            burst = self._burst_factor(profile.burstiness, rng)
            requests = max(
                self.generator_config.min_requests,
                nominal_requests * intensity[t] * burst,
            )
            intervals.append(WorkloadInterval(ratios, requests))

        return WorkloadTrace(
            name=name or f"standard/{profile.name}",
            intervals=intervals,
            metadata={
                "kind": "standard",
                "profile": profile.name,
                "duration": duration,
                "target_load": self.generator_config.target_load,
            },
        )

    def generate_suite(
        self,
        duration: Optional[int] = None,
        profiles: Optional[Sequence[str]] = None,
        rng: SeedLike = None,
    ) -> Dict[str, WorkloadTrace]:
        """Generate one standard trace per profile (default: all 12)."""
        names = list(profiles) if profiles is not None else list(STANDARD_PROFILES)
        rng = new_rng(rng) if rng is not None else self._rng
        return {
            name: self.generate(name, duration=duration, rng=rng) for name in names
        }

    # ------------------------------------------------------------------
    # Stochastic helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _jitter_ratios(
        base_ratios: np.ndarray, jitter: float, rng: np.random.Generator
    ) -> np.ndarray:
        if jitter <= 0:
            return base_ratios.copy()
        # Dirichlet jitter around the base mix: concentration inversely
        # proportional to the jitter strength keeps the mean mix stable.
        concentration = np.clip(base_ratios, 1e-4, None) / max(jitter, 1e-6)
        sample = rng.dirichlet(concentration)
        return sample

    @staticmethod
    def _burst_factor(burstiness: float, rng: np.random.Generator) -> float:
        if burstiness <= 0:
            return 1.0
        # Lognormal with unit mean: exp(N(-sigma^2/2, sigma)).
        sigma = burstiness
        return float(rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma))
