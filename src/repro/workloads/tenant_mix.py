"""Skewed tenant-to-profile assignment for fleet-scale load.

Real storage fleets are not uniform over workload classes: a few
business models (databases, VDI) dominate the tenant population while
the rest form a long tail.  :class:`ZipfianTenantMix` models that as a
Zipf distribution over an ordered list of workload profiles — rank
``r`` (1-based) gets weight ``1 / r**skew`` — and turns uniform draws
into profile assignments by inverse-CDF lookup, so the assignment is a
pure function of the draw and the mix is byte-deterministic under any
counter-based rng.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ZipfianTenantMix"]


class ZipfianTenantMix:
    """Zipf-weighted choice over an ordered profile list.

    ``skew=0`` degenerates to the uniform mix; larger skews concentrate
    the fleet on the first profiles in ``profiles`` (order is rank).
    """

    def __init__(self, profiles: Sequence[str], skew: float = 1.0) -> None:
        self.profiles: List[str] = [str(name) for name in profiles]
        if not self.profiles:
            raise ConfigurationError("tenant mix needs at least one profile")
        if len(set(self.profiles)) != len(self.profiles):
            raise ConfigurationError("tenant mix profiles must be distinct")
        if skew < 0:
            raise ConfigurationError("zipf skew must be non-negative")
        self.skew = float(skew)
        ranks = np.arange(1, len(self.profiles) + 1, dtype=float)
        weights = ranks ** (-self.skew)
        self._weights = weights / weights.sum()
        self._cdf = np.cumsum(self._weights)
        self._cdf[-1] = 1.0  # guard the top edge against fp round-off

    def weights(self) -> Dict[str, float]:
        """Normalised profile → probability mapping (rank order preserved)."""
        return {
            name: float(w) for name, w in zip(self.profiles, self._weights)
        }

    def assign_indices(self, uniforms: np.ndarray) -> np.ndarray:
        """Profile *indices* for draws in [0, 1) (inverse-CDF lookup)."""
        draws = np.asarray(uniforms, dtype=float)
        if draws.size and (draws.min() < 0.0 or draws.max() >= 1.0):
            raise ConfigurationError("tenant-mix draws must lie in [0, 1)")
        return np.searchsorted(self._cdf, draws, side="right").astype(np.int64)

    def assign(self, uniforms: np.ndarray) -> List[str]:
        """Profile names for draws in [0, 1)."""
        return [self.profiles[i] for i in self.assign_indices(uniforms)]

    def as_dict(self) -> Dict[str, object]:
        return {"profiles": list(self.profiles), "skew": self.skew}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ZipfianTenantMix(profiles={len(self.profiles)}, skew={self.skew})"
        )
