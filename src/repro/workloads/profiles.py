"""The 12 standard business-model workload profiles.

The paper synthesises "12 classes of standard workload traces …, each of
which is associated with one typical business model of the users, such
as database, heavy computing, etc." (Section 4.1).  The exact Vdbench
configurations are proprietary; the profiles below encode the commonly
published characteristics of those business models (block sizes,
read/write ratios, diurnal periodicity, trends) and are the fixed,
documented workload suite of this reproduction.

Size weight vectors are over (4K, 8K, 16K, 32K, 64K, 128K, 256K).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import WorkloadError
from repro.workloads.spec import IntensityModel, WorkloadProfile


def _profile(**kwargs) -> WorkloadProfile:
    return WorkloadProfile(**kwargs)


STANDARD_PROFILES: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in [
        _profile(
            name="oltp_database",
            description="OLTP database: small random IO, read-mostly with bursts of commits",
            read_fraction=0.7,
            read_size_weights=[0.5, 0.3, 0.15, 0.05, 0.0, 0.0, 0.0],
            write_size_weights=[0.4, 0.35, 0.2, 0.05, 0.0, 0.0, 0.0],
            intensity=IntensityModel(base=1.0, amplitude=0.35, period=24, trend=0.0),
            burstiness=0.18,
            mix_jitter=0.06,
        ),
        _profile(
            name="olap_database",
            description="OLAP / analytics: large sequential reads, periodic batch loads",
            read_fraction=0.85,
            read_size_weights=[0.0, 0.0, 0.05, 0.1, 0.25, 0.3, 0.3],
            write_size_weights=[0.0, 0.0, 0.05, 0.15, 0.3, 0.3, 0.2],
            intensity=IntensityModel(base=0.95, amplitude=0.25, period=48, trend=0.0),
            burstiness=0.12,
            mix_jitter=0.05,
        ),
        _profile(
            name="web_server",
            description="Web serving: small reads dominate, light logging writes",
            read_fraction=0.9,
            read_size_weights=[0.45, 0.3, 0.15, 0.1, 0.0, 0.0, 0.0],
            write_size_weights=[0.6, 0.25, 0.15, 0.0, 0.0, 0.0, 0.0],
            intensity=IntensityModel(base=0.9, amplitude=0.45, period=24, phase=1.0),
            burstiness=0.2,
            mix_jitter=0.05,
        ),
        _profile(
            name="file_server",
            description="General file serving: mixed sizes, moderate writes",
            read_fraction=0.65,
            read_size_weights=[0.15, 0.2, 0.2, 0.2, 0.15, 0.07, 0.03],
            write_size_weights=[0.1, 0.2, 0.25, 0.2, 0.15, 0.07, 0.03],
            intensity=IntensityModel(base=0.9, amplitude=0.3, period=24),
            burstiness=0.15,
            mix_jitter=0.07,
        ),
        _profile(
            name="vdi",
            description="Virtual desktop infrastructure: boot/login storms, write-heavy steady state",
            read_fraction=0.45,
            read_size_weights=[0.4, 0.3, 0.2, 0.1, 0.0, 0.0, 0.0],
            write_size_weights=[0.35, 0.3, 0.2, 0.1, 0.05, 0.0, 0.0],
            intensity=IntensityModel(base=1.0, amplitude=0.5, period=24, phase=0.5),
            burstiness=0.25,
            mix_jitter=0.08,
        ),
        _profile(
            name="backup",
            description="Backup window: very large sequential writes ramping up",
            read_fraction=0.1,
            read_size_weights=[0.0, 0.0, 0.0, 0.1, 0.2, 0.3, 0.4],
            write_size_weights=[0.0, 0.0, 0.0, 0.05, 0.15, 0.3, 0.5],
            intensity=IntensityModel(base=0.85, amplitude=0.2, period=48, trend=0.004),
            burstiness=0.1,
            mix_jitter=0.04,
        ),
        _profile(
            name="video_streaming",
            description="Media streaming: large sequential reads, negligible writes",
            read_fraction=0.95,
            read_size_weights=[0.0, 0.0, 0.0, 0.05, 0.15, 0.35, 0.45],
            write_size_weights=[0.0, 0.0, 0.1, 0.2, 0.3, 0.2, 0.2],
            intensity=IntensityModel(base=0.9, amplitude=0.4, period=24, phase=2.0),
            burstiness=0.12,
            mix_jitter=0.04,
        ),
        _profile(
            name="heavy_compute",
            description="HPC scratch / heavy computing: large reads and checkpoint write bursts",
            read_fraction=0.55,
            read_size_weights=[0.0, 0.05, 0.1, 0.15, 0.25, 0.25, 0.2],
            write_size_weights=[0.0, 0.0, 0.05, 0.1, 0.25, 0.3, 0.3],
            intensity=IntensityModel(base=1.05, amplitude=0.3, period=36),
            burstiness=0.22,
            mix_jitter=0.07,
        ),
        _profile(
            name="email_server",
            description="Email / collaboration: small mixed IO with business-hours period",
            read_fraction=0.6,
            read_size_weights=[0.35, 0.3, 0.2, 0.1, 0.05, 0.0, 0.0],
            write_size_weights=[0.3, 0.3, 0.25, 0.1, 0.05, 0.0, 0.0],
            intensity=IntensityModel(base=0.85, amplitude=0.4, period=24, phase=0.8),
            burstiness=0.15,
            mix_jitter=0.06,
        ),
        _profile(
            name="log_ingest",
            description="Log/telemetry ingestion: steady medium writes with slow growth",
            read_fraction=0.2,
            read_size_weights=[0.1, 0.2, 0.3, 0.2, 0.2, 0.0, 0.0],
            write_size_weights=[0.05, 0.15, 0.3, 0.3, 0.15, 0.05, 0.0],
            intensity=IntensityModel(base=0.9, amplitude=0.15, period=24, trend=0.003),
            burstiness=0.1,
            mix_jitter=0.05,
        ),
        _profile(
            name="ai_training",
            description="AI training data pipeline: very large reads, periodic checkpoint writes",
            read_fraction=0.8,
            read_size_weights=[0.0, 0.0, 0.0, 0.05, 0.15, 0.3, 0.5],
            write_size_weights=[0.0, 0.0, 0.0, 0.0, 0.1, 0.3, 0.6],
            intensity=IntensityModel(base=1.0, amplitude=0.2, period=12),
            burstiness=0.18,
            mix_jitter=0.05,
        ),
        _profile(
            name="virtualization",
            description="Mixed virtualised servers: broad size mix, balanced read/write",
            read_fraction=0.55,
            read_size_weights=[0.2, 0.2, 0.2, 0.15, 0.15, 0.05, 0.05],
            write_size_weights=[0.2, 0.2, 0.2, 0.15, 0.15, 0.05, 0.05],
            intensity=IntensityModel(base=0.95, amplitude=0.3, period=24, phase=1.5),
            burstiness=0.16,
            mix_jitter=0.08,
        ),
    ]
}


def profile_names() -> List[str]:
    """Names of the 12 standard profiles in a stable order."""
    return list(STANDARD_PROFILES.keys())


def get_profile(name: str) -> WorkloadProfile:
    """Look up a standard profile by name."""
    try:
        return STANDARD_PROFILES[name]
    except KeyError as exc:
        raise WorkloadError(
            f"unknown workload profile {name!r}; available: {profile_names()}"
        ) from exc
