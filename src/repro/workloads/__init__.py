"""Vdbench-style synthetic workload generation.

The paper synthesises 12 classes of "standard" workload traces with the
Vdbench tool, each matching a typical customer business model (database,
heavy computing, …), and then simulates scarce "real" customer traces by
sampling snippets from the standard workloads (Section 4.1).  This
package reproduces both steps without the external tool: profiles are
parameterised by the same characteristics a Vdbench config would encode
(IO-size mix, read/write ratio, intensity level, periodicity, trend,
burstiness).
"""

from repro.workloads.spec import WorkloadProfile, IntensityModel
from repro.workloads.profiles import STANDARD_PROFILES, get_profile, profile_names
from repro.workloads.generator import StandardWorkloadGenerator, GeneratorConfig
from repro.workloads.sampler import RealTraceSampler, SamplerConfig
from repro.workloads.tenant_mix import ZipfianTenantMix
from repro.workloads.trace_io import save_trace, load_trace, save_trace_bundle, load_trace_bundle

__all__ = [
    "WorkloadProfile",
    "IntensityModel",
    "STANDARD_PROFILES",
    "get_profile",
    "profile_names",
    "StandardWorkloadGenerator",
    "GeneratorConfig",
    "RealTraceSampler",
    "SamplerConfig",
    "ZipfianTenantMix",
    "save_trace",
    "load_trace",
    "save_trace_bundle",
    "load_trace_bundle",
]
