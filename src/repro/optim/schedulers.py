"""Learning-rate schedulers operating on an :class:`~repro.optim.optimizer.Optimizer`."""

from __future__ import annotations

from repro.errors import TrainingError
from repro.optim.optimizer import Optimizer


class _Scheduler:
    """Base class: remembers the initial LR and tracks epochs."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and return the new learning rate."""
        self.epoch += 1
        new_lr = self._compute_lr()
        self.optimizer.lr = new_lr
        return new_lr

    def _compute_lr(self) -> float:  # pragma: no cover - interface method
        raise NotImplementedError


class ConstantLR(_Scheduler):
    """Keeps the learning rate fixed (explicit no-op scheduler)."""

    def _compute_lr(self) -> float:
        return self.base_lr


class StepLR(_Scheduler):
    """Multiplies the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise TrainingError(f"step_size must be positive, got {step_size}")
        if not 0.0 < gamma <= 1.0:
            raise TrainingError(f"gamma must be in (0, 1], got {gamma}")
        self.step_size = step_size
        self.gamma = gamma

    def _compute_lr(self) -> float:
        return self.base_lr * (self.gamma ** (self.epoch // self.step_size))


class LinearDecayLR(_Scheduler):
    """Linearly decays the learning rate to ``final_fraction`` over ``total_epochs``."""

    def __init__(
        self, optimizer: Optimizer, total_epochs: int, final_fraction: float = 0.1
    ) -> None:
        super().__init__(optimizer)
        if total_epochs <= 0:
            raise TrainingError(f"total_epochs must be positive, got {total_epochs}")
        if not 0.0 <= final_fraction <= 1.0:
            raise TrainingError(f"final_fraction must be in [0, 1], got {final_fraction}")
        self.total_epochs = total_epochs
        self.final_fraction = final_fraction

    def _compute_lr(self) -> float:
        progress = min(1.0, self.epoch / self.total_epochs)
        fraction = 1.0 - (1.0 - self.final_fraction) * progress
        return self.base_lr * fraction
