"""Gradient clipping utilities.

The paper clips the global gradient norm to 2.0 before each optimiser
step (Section 4.2).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.autograd.tensor import Tensor


def global_grad_norm(parameters: Sequence[Tensor]) -> float:
    """Return the L2 norm of all gradients concatenated."""
    total = 0.0
    for param in parameters:
        if param.grad is None:
            continue
        total += float((param.grad ** 2).sum())
    return math.sqrt(total)


def clip_grad_norm(parameters: Sequence[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global norm is at most ``max_norm``.

    Returns the norm before clipping, mirroring the PyTorch convention.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    norm = global_grad_norm(parameters)
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for param in parameters:
            if param.grad is not None:
                param.grad *= scale
    return norm
