"""Optimizer base class."""

from __future__ import annotations

from typing import List, Sequence

from repro.autograd.tensor import Tensor
from repro.errors import TrainingError


class Optimizer:
    """Holds a list of trainable tensors and applies updates from their grads."""

    def __init__(self, parameters: Sequence[Tensor], lr: float) -> None:
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise TrainingError("optimizer received an empty parameter list")
        if lr <= 0:
            raise TrainingError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        self._step_count = 0

    @property
    def step_count(self) -> int:
        return self._step_count

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update using the currently accumulated gradients."""
        self._step_count += 1
        self._apply()

    def _apply(self) -> None:  # pragma: no cover - interface method
        raise NotImplementedError
