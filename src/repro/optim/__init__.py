"""Gradient-based optimisers and gradient utilities."""

from repro.optim.optimizer import Optimizer
from repro.optim.sgd import SGD
from repro.optim.adam import Adam
from repro.optim.clip import clip_grad_norm, global_grad_norm
from repro.optim.schedulers import ConstantLR, LinearDecayLR, StepLR

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "global_grad_norm",
    "ConstantLR",
    "LinearDecayLR",
    "StepLR",
]
