"""Plain-text table/series rendering for the benchmark harness.

The paper's results are figures; our benchmark harnesses print the same
rows/series as readable ASCII so the shape of each result can be
inspected from the terminal or from captured benchmark output.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _stringify(cell: object, floatfmt: str) -> str:
    if isinstance(cell, float):
        return format(cell, floatfmt)
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    floatfmt: str = ".3f",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows: List[List[str]] = [[_stringify(c, floatfmt) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[object],
    ys: Sequence[float],
    floatfmt: str = ".3f",
    max_points: int = 40,
) -> str:
    """Render an (x, y) series compactly, subsampling long series."""
    if len(xs) != len(ys):
        raise ValueError(f"series lengths differ: {len(xs)} vs {len(ys)}")
    n = len(xs)
    if n == 0:
        return f"{name}: (empty)"
    if n > max_points:
        idx = [round(i * (n - 1) / (max_points - 1)) for i in range(max_points)]
    else:
        idx = list(range(n))
    pairs = ", ".join(
        f"{xs[i]}:{_stringify(float(ys[i]), floatfmt)}" for i in idx
    )
    return f"{name} [{n} pts]: {pairs}"
