"""Saving/loading of experiment artefacts (JSON configs, npz weight bundles)."""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Mapping, Union

import numpy as np

from repro.errors import SerializationError

PathLike = Union[str, Path]


def _to_jsonable(value: Any) -> Any:
    """Convert numpy scalars/arrays into plain JSON-compatible values."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, Mapping):
        return {str(k): _to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    return value


def _canonical_json(payload: Mapping[str, Any]) -> str:
    """The canonical text form shared by :func:`save_json` and :func:`json_digest`."""
    return json.dumps(_to_jsonable(dict(payload)), indent=2, sort_keys=True)


def atomic_write_text(path: PathLike, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    A reader (or a rerun inspecting previous results) either sees the
    complete old file or the complete new one — a process killed
    mid-write can no longer leave a truncated file that later parses as
    a corrupt result.  The temp file lives in the target directory so
    the final rename never crosses filesystems; it is unlinked on any
    write failure.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temp_path = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        with temp_path.open("w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(temp_path, path)
    except OSError as exc:
        temp_path.unlink(missing_ok=True)
        raise SerializationError(f"could not write to {path}: {exc}") from exc


def save_json(path: PathLike, payload: Mapping[str, Any]) -> None:
    """Write ``payload`` to ``path`` as pretty-printed JSON, atomically."""
    path = Path(path)
    try:
        text = _canonical_json(payload)
    except TypeError as exc:
        raise SerializationError(f"could not write JSON to {path}: {exc}") from exc
    atomic_write_text(path, text)


def load_json(path: PathLike) -> Dict[str, Any]:
    """Load a JSON file written by :func:`save_json`."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as fh:
            return json.load(fh)
    except (json.JSONDecodeError, OSError) as exc:
        raise SerializationError(f"could not read JSON from {path}: {exc}") from exc


def json_digest(payload: Mapping[str, Any]) -> str:
    """A stable sha256 fingerprint of ``payload``'s canonical JSON form.

    Two payloads digest identically iff :func:`save_json` would write the
    same bytes for them, which makes the digest a cheap determinism check
    for experiment results (the sweep runner records one per job).
    """
    return hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()


def save_npz(path: PathLike, arrays: Mapping[str, np.ndarray]) -> None:
    """Save a mapping of arrays to a compressed ``.npz`` bundle."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        np.savez_compressed(path, **{str(k): np.asarray(v) for k, v in arrays.items()})
    except (ValueError, OSError) as exc:
        raise SerializationError(f"could not write npz to {path}: {exc}") from exc


def load_npz(path: PathLike) -> Dict[str, np.ndarray]:
    """Load an ``.npz`` bundle written by :func:`save_npz`."""
    path = Path(path)
    try:
        with np.load(path) as data:
            return {key: np.array(data[key]) for key in data.files}
    except (ValueError, OSError) as exc:
        raise SerializationError(f"could not read npz from {path}: {exc}") from exc
