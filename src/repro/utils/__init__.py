"""General-purpose utilities shared across the library."""

from repro.utils.rng import RngFactory, new_rng, spawn_rngs
from repro.utils.stats import RunningStat, ExponentialMovingAverage, summarize
from repro.utils.tables import format_table, format_series
from repro.utils.serialization import save_json, load_json, save_npz, load_npz

__all__ = [
    "RngFactory",
    "new_rng",
    "spawn_rngs",
    "RunningStat",
    "ExponentialMovingAverage",
    "summarize",
    "format_table",
    "format_series",
    "save_json",
    "load_json",
    "save_npz",
    "load_npz",
]
