"""Streaming statistics helpers used by trainers and the evaluation harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

import numpy as np


class RunningStat:
    """Numerically stable running mean/variance (Welford's algorithm)."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def update(self, value: float) -> None:
        value = float(value)
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def update_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.update(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "max": self.max,
        }


class ExponentialMovingAverage:
    """EMA tracker used for smoothing learning curves."""

    def __init__(self, alpha: float = 0.1) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value: float | None = None

    def update(self, value: float) -> float:
        value = float(value)
        if self._value is None:
            self._value = value
        else:
            self._value = self.alpha * value + (1.0 - self.alpha) * self._value
        return self._value

    @property
    def value(self) -> float:
        if self._value is None:
            raise ValueError("EMA has not been updated yet")
        return self._value


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    min: float
    median: float
    max: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "median": self.median,
            "max": self.max,
        }


def summarize(values: Sequence[float]) -> Summary:
    """Return a :class:`Summary` of ``values`` (empty input -> zeros)."""
    if len(values) == 0:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    arr = np.asarray(values, dtype=float)
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        min=float(arr.min()),
        median=float(np.median(arr)),
        max=float(arr.max()),
    )
