"""Deterministic random-number management.

All stochastic components of the library (simulator idle sampling,
workload synthesis, exploration, weight initialisation) receive a
``numpy.random.Generator`` rather than touching global state.  This
module centralises how those generators are created so that experiments
are reproducible from a single integer seed.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, "PhiloxLane", None]

#: Stream families understood by the rollout stack.  ``legacy`` is the
#: original per-episode ``np.random.Generator`` contract (bit-compatible
#: with all pre-existing golden traces); ``philox`` is the counter-based
#: family below whose draws batch across episode lanes in one call.
RNG_FAMILIES = ("legacy", "philox")


def new_rng(seed: SeedLike = None) -> Union[np.random.Generator, "PhiloxLane"]:
    """Return a random generator from a seed-like value.

    Accepts ``None`` (non-deterministic), an integer seed, or an existing
    generator (returned unchanged so callers can pass generators through
    transparently).  :class:`PhiloxLane` views pass through unchanged as
    well — they implement the subset of the ``Generator`` API the
    simulator and policy consume (``random``/``poisson``/``integers``).
    """
    if isinstance(seed, (np.random.Generator, PhiloxLane)):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` independent child generators from one seed.

    Children are derived with ``SeedSequence.spawn`` so that streams do
    not overlap even for adjacent seeds.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


class RngFactory:
    """Produces named, reproducible random generators.

    A factory created with a seed hands out generators keyed by string
    names.  Asking twice for the same name yields generators with the
    same stream, which makes components independently reproducible::

        factory = RngFactory(123)
        sim_rng = factory.get("simulator")
        agent_rng = factory.get("agent")
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = seed
        self._counters: dict[str, int] = {}

    @property
    def seed(self) -> Optional[int]:
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return a generator for ``name`` (fresh stream on each call)."""
        index = self._counters.get(name, 0)
        self._counters[name] = index + 1
        entropy = (self._seed, _stable_hash(name), index)
        return np.random.default_rng(np.random.SeedSequence(entropy=_flatten(entropy)))

    def reset(self) -> None:
        """Forget per-name counters so streams repeat from the start."""
        self._counters.clear()


def _stable_hash(text: str) -> int:
    """A process-independent 63-bit hash of ``text``.

    Unlike the builtin ``hash`` (salted per process), this FNV-1a variant
    is identical across interpreter runs and worker processes.
    """
    value = 1469598103934665603
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 1099511628211) % (1 << 63)
    return value


def _flatten(entropy: Iterable) -> List[int]:
    flat: List[int] = []
    for item in entropy:
        if item is None:
            flat.append(0)
        else:
            flat.append(int(item))
    return flat


# ----------------------------------------------------------------------
# Counter-based streams (Philox4x32-10)
# ----------------------------------------------------------------------
#
# The legacy contract hands every episode its own ``np.random.Generator``;
# those streams cannot be advanced for B episodes in one numpy call, so
# the rollout hot path pays a Python-level loop per decision and per idle
# sample.  The Philox family replaces the stateful generators with a pure
# function of ``(base_seed, domain, episode, draw_index)``: lane ``i``'s
# k-th draw is the Philox4x32-10 block whose counter encodes
# ``(draw_index=k, episode=i)`` under a key hashed from the seed and a
# domain string.  All B lanes' next draws therefore materialise in one
# vectorized call, and any subset of lanes (worker shards, active-row
# masks, B=1 scalar replays) reproduces the full-batch streams exactly
# because lanes never share state.

_PHILOX_M0 = 0xD2511F53
_PHILOX_M1 = 0xCD9E8D57
_PHILOX_W0 = 0x9E3779B9
_PHILOX_W1 = 0xBB67AE85
_PHILOX_ROUNDS = 10
_U64_MASK32 = np.uint64(0xFFFFFFFF)
_U64_32 = np.uint64(32)
_INV_2_53 = float(2.0 ** -53)
#: Draws precomputed per lane per refill.  The 10-round keystream pass
#: costs ~90 numpy dispatches regardless of element count, so running it
#: per draw on a handful of lanes is slower than the legacy generator
#: loop it replaces; buffering a block amortises the pass across
#: ``_PHILOX_BLOCK`` draws per lane.  Because streams are pure functions
#: of ``(episode, counter)``, prefetching never changes any value —
#: ``uniforms()`` serves the exact same doubles it would compute one at
#: a time.
_PHILOX_BLOCK = 64


def _philox_round_keys(key0: int, key1: int) -> List[Tuple[np.uint64, np.uint64]]:
    """The 10 Weyl-incremented round keys, precomputed once per stream set.

    Computed in Python integers and masked to 32 bits *before* conversion
    so no numpy scalar overflow warnings fire inside the hot loop.
    """
    return [
        (
            np.uint64((key0 + r * _PHILOX_W0) & 0xFFFFFFFF),
            np.uint64((key1 + r * _PHILOX_W1) & 0xFFFFFFFF),
        )
        for r in range(_PHILOX_ROUNDS)
    ]


def _philox_uniforms(
    episodes: np.ndarray,
    counters: np.ndarray,
    round_keys: Sequence[Tuple[np.uint64, np.uint64]],
) -> np.ndarray:
    """One double in [0, 1) per lane from counter ``(draw, episode)``.

    ``episodes`` and ``counters`` are uint64 arrays of equal shape; the
    four 32-bit counter words are ``(draw lo, draw hi, episode lo,
    episode hi)``.  The whole batch of lanes runs through the 10 rounds
    in a handful of vectorized uint64 ops; a 1-element call is
    bit-identical to the matching rows of any larger call because every
    operation is element-wise.
    """
    c0 = counters & _U64_MASK32
    c1 = counters >> _U64_32
    c2 = episodes & _U64_MASK32
    c3 = episodes >> _U64_32
    m0 = np.uint64(_PHILOX_M0)
    m1 = np.uint64(_PHILOX_M1)
    for k0, k1 in round_keys:
        p0 = m0 * c0
        p1 = m1 * c2
        c0 = (p1 >> _U64_32) ^ c1 ^ k0
        c1 = p1 & _U64_MASK32
        c2 = (p0 >> _U64_32) ^ c3 ^ k1
        c3 = p0 & _U64_MASK32
    # 27 + 26 = 53 uniformly random mantissa bits, same construction as
    # the standard double-from-two-words recipe.
    high = (c0 >> np.uint64(5)).astype(np.float64)
    low = (c1 >> np.uint64(6)).astype(np.float64)
    return (high * 67108864.0 + low) * _INV_2_53


def _poisson_from_uniform(
    uniforms: np.ndarray, lam: np.ndarray, term: Optional[np.ndarray] = None
) -> np.ndarray:
    """Poisson draws by CDF inversion of one uniform per element.

    Vectorized transcription of the scalar loop ``p = cdf = exp(-lam);
    while u >= cdf: k += 1; p *= lam / k; cdf += p`` — every element runs
    the identical arithmetic sequence (finished elements keep updating
    ``p``/``cdf`` but can never re-enter the pending set because the CDF
    only grows), so a 1-element call matches any batched call bitwise.

    ``term`` may pass ``exp(-lam)`` precomputed (callers with an
    all-zero fast path already have it); values are unchanged.
    """
    uniforms = np.asarray(uniforms, dtype=np.float64)
    lam = np.broadcast_to(np.asarray(lam, dtype=np.float64), uniforms.shape)
    if term is None:
        term = np.exp(-lam)
    else:
        # Writable copy: the loop updates ``term`` in place.
        term = np.array(np.broadcast_to(term, uniforms.shape), dtype=np.float64)
    cdf = term.copy()
    counts = np.zeros(uniforms.shape, dtype=np.int64)
    max_lam = float(lam.max()) if lam.size else 0.0
    cap = int(max_lam + 10.0 * math.sqrt(max_lam) + 64.0)
    for k in range(1, cap + 1):
        pending = uniforms >= cdf
        if not pending.any():
            break
        counts[pending] += 1
        term *= lam / k
        cdf += term
    return counts


def _philox_idle_reference(
    episodes: np.ndarray,
    cursors: np.ndarray,
    counts: np.ndarray,
    lam: np.ndarray,
    term: np.ndarray,
    round_keys: Sequence[Tuple[np.uint64, np.uint64]],
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Pure-numpy specification of the fused idle sampler.

    Per lane, each cell with ``counts > 1`` consumes one uniform from
    consecutive cursor values in level order; cells whose uniform clears
    ``term = exp(-lam)`` invert the Poisson CDF and clamp to
    ``counts - 1``.  Returns ``(idle_draws, ndraws, fired)`` — exactly
    the contract of the native ``repro_philox_idle`` entry point, which
    the load-time self-check verifies bit for bit.
    """
    eligible = counts > 1
    rank = (np.cumsum(eligible, axis=1) - 1).astype(np.uint64)
    ctr = cursors[:, None] + rank
    lanes = np.broadcast_to(episodes[:, None], ctr.shape)
    uniforms = _philox_uniforms(lanes, ctr, round_keys)
    fire = eligible & (uniforms >= term)
    idle = np.zeros(counts.shape, dtype=np.int64)
    if fire.any():
        draws = _poisson_from_uniform(uniforms[fire], lam[fire], term[fire])
        idle[fire] = np.minimum(draws, counts[fire] - 1)
    return idle, eligible.sum(axis=1).astype(np.uint64), int(fire.sum())


_idle_kernel = None
_idle_kernel_state = "unchecked"  # "unchecked" | "ready" | "disabled"


def _philox_idle_self_check(kernel) -> bool:
    """Bit-identity probe for the native sampler.

    Runs a spread of (episode, cursor, count, idle_rate) cells — zero/one
    core skips, shallow and ~100-iteration inversions — through the C
    entry point and the numpy reference.  Any mismatch (integer draws,
    consumed-cursor counts, or fired totals) disables the native sampler
    for the process, so an exotic compiler or platform silently degrades
    to the numpy path instead of breaking pinned streams.
    """
    probe = PhiloxStreams(12345, np.arange(8, dtype=np.uint64) * 3, "selfcheck")
    episodes = probe._episodes
    cursors = np.array([0, 3, 17, 2, 95, 1000, 6, 31], dtype=np.uint64)
    counts = np.array(
        [
            [0, 1, 2], [2, 2, 2], [1, 5, 9], [40, 2, 1],
            [3, 3, 3], [120, 7, 2], [2, 1, 2], [17, 17, 17],
        ],
        dtype=np.int64,
    )
    try:
        for idle_rate in (0.02, 0.37, 0.817):
            lam = idle_rate * counts
            term = np.exp(-lam)
            idle_c, ndraws_c, fired_c = kernel.sample(
                episodes, cursors, counts, lam, term, probe._key0, probe._key1
            )
            idle_ref, ndraws_ref, fired_ref = _philox_idle_reference(
                episodes, cursors, counts, lam, term, probe._round_keys
            )
            if (
                fired_c != fired_ref
                or not np.array_equal(idle_c, idle_ref)
                or not np.array_equal(ndraws_c, ndraws_ref)
            ):
                return False
    except Exception:
        return False
    return True


def _native_idle_kernel():
    """The self-checked native idle sampler, or ``None`` (numpy path)."""
    global _idle_kernel, _idle_kernel_state
    if _idle_kernel_state == "ready":
        return _idle_kernel
    if _idle_kernel_state == "disabled":
        return None
    _idle_kernel_state = "disabled"
    try:
        from repro.nn.native import NativePhiloxIdleKernel, load_philox_kernel

        if load_philox_kernel() is None:
            return None
        kernel = NativePhiloxIdleKernel()
    except Exception:
        return None
    if not _philox_idle_self_check(kernel):
        return None
    _idle_kernel = kernel
    _idle_kernel_state = "ready"
    return kernel


class PhiloxStreams:
    """B independent counter-based lanes for one ``(base_seed, domain)``.

    Supports both consumption styles the rollout stack needs:

    * vectorized — :meth:`uniforms` / :meth:`poisson` / :meth:`integers`
      advance a subset of lanes (``rows``) in one numpy call;
    * scalar — indexing (``streams[i]``) yields a :class:`PhiloxLane`
      view that shares this object's cursor storage and draws through
      the *same* vectorized helpers on 1-element arrays, so sequential
      replays are bit-identical to batched ones by construction.

    ``select`` carves out shard views for worker processes: lanes carry
    their global episode ids with them, so a shard's streams equal the
    matching lanes of the full batch no matter how episodes are split.
    """

    family = "philox"

    def __init__(
        self,
        base_seed: int,
        episodes: Union[int, Sequence[int], np.ndarray],
        domain: str,
    ) -> None:
        if isinstance(episodes, (int, np.integer)):
            episodes = np.arange(int(episodes), dtype=np.uint64)
        self.base_seed = int(base_seed)
        self.domain = str(domain)
        self._episodes = np.ascontiguousarray(episodes, dtype=np.uint64)
        self._cursors = np.zeros(self._episodes.shape[0], dtype=np.uint64)
        key = _stable_hash(f"philox/{self.domain}/{self.base_seed}")
        self._key0 = key & 0xFFFFFFFF
        self._key1 = (key >> 32) & 0xFFFFFFFF
        self._round_keys = _philox_round_keys(self._key0, self._key1)
        self._init_buffers()

    def _init_buffers(self) -> None:
        count = self._episodes.shape[0]
        self._all_rows = np.arange(count, dtype=np.intp)
        # Per-lane prefetch window [start, end) of counter values whose
        # uniforms sit in ``_buf``; start == end == 0 marks it empty.
        self._buf = np.zeros((count, _PHILOX_BLOCK), dtype=np.float64)
        self._buf_start = np.zeros(count, dtype=np.uint64)
        self._buf_end = np.zeros(count, dtype=np.uint64)

    # -- vectorized draw API ------------------------------------------
    def _rows(self, rows: Optional[np.ndarray]) -> np.ndarray:
        if rows is None:
            return self._all_rows
        return np.asarray(rows, dtype=np.intp)

    def _refill(self, rows: np.ndarray) -> None:
        """Prefetch the next block of draws for ``rows`` from their cursors."""
        counters = (
            self._cursors[rows, None]
            + np.arange(_PHILOX_BLOCK, dtype=np.uint64)[None, :]
        )
        episodes = np.broadcast_to(self._episodes[rows, None], counters.shape)
        self._buf[rows] = _philox_uniforms(episodes, counters, self._round_keys)
        self._buf_start[rows] = self._cursors[rows]
        self._buf_end[rows] = counters[:, -1] + np.uint64(1)

    def uniforms(self, rows: Optional[np.ndarray] = None) -> np.ndarray:
        """One uniform in [0, 1) per requested lane; advances their cursors."""
        rows = self._rows(rows)
        cursors = self._cursors[rows]
        stale = (cursors < self._buf_start[rows]) | (cursors >= self._buf_end[rows])
        if stale.any():
            self._refill(rows[stale])
        offsets = (cursors - self._buf_start[rows]).astype(np.intp)
        draws = self._buf[rows, offsets]
        self._cursors[rows] = cursors + np.uint64(1)
        return draws

    def uniforms_block(self, rows: np.ndarray, counts: np.ndarray) -> np.ndarray:
        """``counts[i]`` consecutive uniforms for lane ``rows[i]`` in one call.

        Returns a ``(len(rows), counts.max())`` array whose row ``i``
        holds lane ``i``'s next ``counts[i]`` draws in cursor order
        (entries beyond ``counts[i]`` are unspecified padding).  Lane
        ``i``'s cursor advances by ``counts[i]``, so the draws — and the
        final cursor positions — are exactly what ``counts[i]``
        successive :meth:`uniforms` calls on that lane would produce.
        ``counts`` must not exceed ``_PHILOX_BLOCK``; a scalar ``counts``
        applies to every requested lane.
        """
        rows = np.asarray(rows, dtype=np.intp)
        if np.isscalar(counts) or np.ndim(counts) == 0:
            width = int(counts)
            counts = np.uint64(width)
        else:
            counts = np.asarray(counts, dtype=np.uint64)
            width = int(counts.max()) if counts.size else 0
        cursors = self._cursors[rows]
        stale = (cursors < self._buf_start[rows]) | (
            cursors + counts > self._buf_end[rows]
        )
        if stale.any():
            self._refill(rows[stale])
        base = (self._cursors[rows] - self._buf_start[rows]).astype(np.intp)
        offsets = base[:, None] + np.arange(width, dtype=np.intp)[None, :]
        # Clamp the padding columns of short lanes inside the window
        # (their values are never consumed).
        draws = self._buf[rows[:, None], np.minimum(offsets, _PHILOX_BLOCK - 1)]
        self._cursors[rows] = cursors + counts
        return draws

    def poisson(
        self, lam: Union[float, np.ndarray], rows: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """One Poisson draw per requested lane (one uniform consumed each)."""
        return _poisson_from_uniform(self.uniforms(rows), lam)

    def integers(self, upper: int, rows: Optional[np.ndarray] = None) -> np.ndarray:
        """One integer in [0, upper) per requested lane (floor of a uniform)."""
        return np.minimum(
            (self.uniforms(rows) * upper).astype(np.int64), upper - 1
        )

    def idle_poisson(
        self,
        rows: np.ndarray,
        counts: np.ndarray,
        lam: np.ndarray,
        term: np.ndarray,
    ) -> Optional[Tuple[np.ndarray, int]]:
        """Fused native idle sampling for the simulator's hot path.

        One C call draws each multi-core ``(lane, level)`` cell's uniform
        (consecutive cursors per lane, level order — the exact scalar
        consumption sequence) and inverts the Poisson CDF, returning the
        clamped draws matrix and the fired-cell count, and advancing the
        requested lanes' cursors.  Returns ``None`` when the native
        sampler is unavailable or failed its load-time bit-identity
        self-check; callers then run the numpy path, which produces the
        same values.  The draws matrix is a reused workspace — scatter or
        copy it before the next call.

        ``term`` must be ``np.exp(-lam)`` computed by the *caller* in
        numpy: the sampler never calls the C library's ``exp``, whose
        rounding may differ from numpy's by an ulp.
        """
        kernel = _native_idle_kernel()
        if kernel is None:
            return None
        rows = np.asarray(rows, dtype=np.intp)
        draws, ndraws, fired = kernel.sample(
            self._episodes[rows],
            self._cursors[rows],
            counts,
            lam,
            term,
            self._key0,
            self._key1,
        )
        self._cursors[rows] += ndraws
        return draws, fired

    # -- lane / shard views -------------------------------------------
    def lane(self, index: int) -> "PhiloxLane":
        return PhiloxLane(self, int(index))

    def select(self, indices: Union[Sequence[int], np.ndarray]) -> "PhiloxStreams":
        """A stream set for a subset of lanes (keeps global episode ids).

        The view copies cursor values (lanes never share draw state
        across objects — they don't need to, the streams are pure
        functions of episode and cursor), so shard workers can build it
        from a fresh derivation and still match the full batch exactly.
        """
        indices = np.asarray(indices, dtype=np.intp)
        view = object.__new__(PhiloxStreams)
        view.base_seed = self.base_seed
        view.domain = self.domain
        view._episodes = np.ascontiguousarray(self._episodes[indices])
        view._cursors = np.ascontiguousarray(self._cursors[indices])
        view._key0 = self._key0
        view._key1 = self._key1
        view._round_keys = self._round_keys
        # Fresh (empty) prefetch window: the first draw refills it; the
        # values are the same pure function of (episode, counter).
        view._init_buffers()
        return view

    def __len__(self) -> int:
        return int(self._episodes.shape[0])

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self.select(np.arange(len(self))[index])
        return self.lane(index)

    def __iter__(self):
        return (self.lane(i) for i in range(len(self)))

    def state(self) -> dict:
        """Positions of every lane (the diff harness asserts on these)."""
        return {
            "family": self.family,
            "domain": self.domain,
            "base_seed": self.base_seed,
            "episodes": self._episodes.tolist(),
            "cursors": self._cursors.tolist(),
        }


class PhiloxLane:
    """Single-lane view of a :class:`PhiloxStreams` (shared cursor storage).

    Implements the subset of the ``np.random.Generator`` API the
    simulator and policy consume.  Every draw routes through the parent's
    vectorized helpers on a 1-element row set, which is what guarantees
    scalar replays reproduce batched draws bit for bit.
    """

    family = "philox"

    def __init__(self, streams: PhiloxStreams, index: int) -> None:
        if not 0 <= index < len(streams):
            raise IndexError(
                f"lane index {index} out of range for {len(streams)} lanes"
            )
        self._streams = streams
        self._index = index
        self._rows = np.array([index], dtype=np.intp)

    @property
    def streams(self) -> PhiloxStreams:
        return self._streams

    @property
    def episode(self) -> int:
        return int(self._streams._episodes[self._index])

    @property
    def cursor(self) -> int:
        return int(self._streams._cursors[self._index])

    def random(self) -> float:
        return float(self._streams.uniforms(self._rows)[0])

    def poisson(self, lam: float) -> int:
        return int(self._streams.poisson(lam, self._rows)[0])

    def integers(self, upper: int) -> int:
        return int(self._streams.integers(int(upper), self._rows)[0])

    def state(self) -> dict:
        """Stream position (same role as ``Generator.bit_generator.state``)."""
        return {
            "family": self.family,
            "domain": self._streams.domain,
            "base_seed": self._streams.base_seed,
            "episode": self.episode,
            "cursor": self.cursor,
        }


def derive_philox_streams(
    base_seed: int, count: int
) -> Tuple[PhiloxStreams, PhiloxStreams]:
    """The Philox counterpart of ``rollout.derive_episode_streams``.

    Returns ``(episode_streams, action_streams)`` over episodes
    ``0..count-1``, keyed under distinct domains so environment and
    exploration draws never collide.
    """
    return (
        PhiloxStreams(base_seed, count, domain="env"),
        PhiloxStreams(base_seed, count, domain="act"),
    )
