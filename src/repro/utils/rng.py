"""Deterministic random-number management.

All stochastic components of the library (simulator idle sampling,
workload synthesis, exploration, weight initialisation) receive a
``numpy.random.Generator`` rather than touching global state.  This
module centralises how those generators are created so that experiments
are reproducible from a single integer seed.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed-like value.

    Accepts ``None`` (non-deterministic), an integer seed, or an existing
    generator (returned unchanged so callers can pass generators through
    transparently).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` independent child generators from one seed.

    Children are derived with ``SeedSequence.spawn`` so that streams do
    not overlap even for adjacent seeds.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


class RngFactory:
    """Produces named, reproducible random generators.

    A factory created with a seed hands out generators keyed by string
    names.  Asking twice for the same name yields generators with the
    same stream, which makes components independently reproducible::

        factory = RngFactory(123)
        sim_rng = factory.get("simulator")
        agent_rng = factory.get("agent")
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = seed
        self._counters: dict[str, int] = {}

    @property
    def seed(self) -> Optional[int]:
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return a generator for ``name`` (fresh stream on each call)."""
        index = self._counters.get(name, 0)
        self._counters[name] = index + 1
        entropy = (self._seed, _stable_hash(name), index)
        return np.random.default_rng(np.random.SeedSequence(entropy=_flatten(entropy)))

    def reset(self) -> None:
        """Forget per-name counters so streams repeat from the start."""
        self._counters.clear()


def _stable_hash(text: str) -> int:
    """A process-independent 63-bit hash of ``text``.

    Unlike the builtin ``hash`` (salted per process), this FNV-1a variant
    is identical across interpreter runs and worker processes.
    """
    value = 1469598103934665603
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 1099511628211) % (1 << 63)
    return value


def _flatten(entropy: Iterable) -> List[int]:
    flat: List[int] = []
    for item in entropy:
        if item is None:
            flat.append(0)
        else:
            flat.append(int(item))
    return flat
