"""Aggregated results of one fleet load run.

A :class:`LoadReport` is split in two on purpose:

* ``deterministic`` — all-integer counters (decisions, churn events,
  stale rejections, occupancy timeline, recycles) plus a sha256
  ``digest`` folded over every applied action of the run.  For a fixed
  ``(base_seed, schedule)`` this section is byte-identical across runs
  and across the in-process / socket transports — it is what the
  determinism pin asserts on.
* ``timing`` — wall-clock rates and latency percentiles (per phase and
  overall), which legitimately vary run to run and are reported for
  humans and the benchmark regression guard, never compared for
  equality.  The timing section is backed by the report's own
  always-enabled :class:`~repro.telemetry.MetricsRegistry` — the same
  instruments serve ``timing_dict()`` (schema unchanged) and
  :meth:`metrics_snapshot` / Prometheus exposition.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.telemetry import LatencyHistogram, MetricsRegistry, MetricsSnapshot
from repro.utils.serialization import save_json

__all__ = ["LoadReport"]


class LoadReport:
    """Accumulator + serialised form of one :class:`FleetDriver` run."""

    def __init__(self, config: Dict[str, object]) -> None:
        self.config = dict(config)
        self.phases: List[Dict[str, object]] = []
        self.occupancy_timeline: List[int] = []
        self.recycles = 0
        self.digest: Optional[str] = None
        # The report's registry is always enabled, independent of the
        # process-global telemetry switch: timing is part of the report
        # contract, not optional observability.
        self.metrics = MetricsRegistry(enabled=True)
        self.phase_latency: Dict[str, LatencyHistogram] = {}
        self.latency = self.metrics.histogram(
            "fleet_request_latency_seconds",
            help="Per-request latency over the whole run",
        )
        self.phase_seconds: Dict[str, float] = {}
        self.elapsed_seconds = 0.0
        self.server_summary: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Accumulation (driver-facing)
    # ------------------------------------------------------------------
    def begin_phase(self, name: str) -> LatencyHistogram:
        hist = self.metrics.histogram(
            "fleet_wave_latency_seconds",
            help="Per-request latency by schedule phase",
            phase=name,
        )
        # Re-running a phase name restarts its series (the old recordings
        # were already merged into the overall histogram).
        hist.reset()
        self.phase_latency[name] = hist
        return hist

    def finish_phase(self, counters: Dict[str, int], seconds: float) -> None:
        self.phases.append(dict(counters))
        name = str(counters["name"])
        self.phase_seconds[name] = float(seconds)
        self.latency.merge(self.phase_latency[name])
        self.metrics.gauge(
            "fleet_phase_seconds",
            help="Wall-clock seconds by schedule phase",
            phase=name,
        ).set(float(seconds))
        self.metrics.counter(
            "fleet_decisions_total",
            help="Decisions driven (incl. burst probes) by schedule phase",
            phase=name,
        ).inc(int(counters.get("decisions", 0)) + int(counters.get("probe_decisions", 0)))

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def deterministic_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "phases": [dict(p) for p in self.phases],
            "decisions_total": sum(int(p["decisions"]) for p in self.phases),
            "probe_decisions_total": sum(
                int(p["probe_decisions"]) for p in self.phases
            ),
            "churn_cycles_total": sum(int(p["churn_cycles"]) for p in self.phases),
            "stale_rejections_total": sum(
                int(p["stale_rejections"]) for p in self.phases
            ),
            "recycles": int(self.recycles),
            "occupancy_timeline": [int(v) for v in self.occupancy_timeline],
        }
        if self.digest is not None:
            payload["digest"] = self.digest
        return payload

    def timing_dict(self) -> Dict[str, object]:
        decisions = sum(int(p["decisions"] + p["probe_decisions"]) for p in self.phases)
        per_phase = {}
        for name, hist in self.phase_latency.items():
            seconds = self.phase_seconds.get(name, 0.0)
            per_phase[name] = {
                "seconds": round(seconds, 4),
                "decisions_per_sec": (
                    round(hist.total / seconds, 2) if seconds > 0 else None
                ),
                "latency": hist.as_dict(),
            }
        return {
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "decisions_per_sec": (
                round(decisions / self.elapsed_seconds, 2)
                if self.elapsed_seconds > 0
                else None
            ),
            "latency": self.latency.as_dict(),
            "per_phase": per_phase,
        }

    def metrics_snapshot(self) -> MetricsSnapshot:
        """The run's timing instruments as a mergeable telemetry snapshot."""
        self.metrics.gauge(
            "fleet_elapsed_seconds", help="Wall-clock seconds of the whole run"
        ).set(float(self.elapsed_seconds))
        self.metrics.gauge(
            "fleet_recycles", help="Shard recycles over the run"
        ).set(float(self.recycles))
        return self.metrics.snapshot()

    def to_prometheus_text(self) -> str:
        return self.metrics_snapshot().to_prometheus_text()

    def as_dict(self) -> Dict[str, object]:
        return {
            "config": dict(self.config),
            "deterministic": self.deterministic_dict(),
            "timing": self.timing_dict(),
            "telemetry": self.metrics_snapshot().as_dict(),
            "server": dict(self.server_summary),
        }

    def deterministic_json(self) -> str:
        """Canonical JSON of the deterministic section (pin-comparable)."""
        return json.dumps(
            self.deterministic_dict(), sort_keys=True, separators=(",", ":")
        )

    def save(self, path) -> None:
        save_json(path, self.as_dict())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        det = self.deterministic_dict()
        return (
            f"LoadReport(decisions={det['decisions_total']}, "
            f"phases={len(self.phases)}, digest={str(self.digest)[:12]})"
        )
