"""Fleet-scale sim-to-serve load harness.

Closes the loop between the repo's two halves: B-major
:class:`~repro.storage.vector_state.VectorSimulatorState` batches act
as thousands of client storage nodes, each one holding a ``(slot,
generation)`` session on the micro-batching
:class:`~repro.serving.server.PolicyServer` — either in-process or
through :class:`~repro.serving.netserver.PolicyNetServer` sockets — and
submitting one decision request per simulated interval.  The
:class:`FleetDriver` runs a phased :class:`FleetSchedule` (session
churn, Zipfian tenant mix, correlated flash-crowd bursts, deliberate
stale-handle probes) and emits a :class:`LoadReport` whose
``deterministic`` section is byte-identical for a fixed ``(base_seed,
schedule)`` — across runs *and* across the in-process vs socket
transports, because every backend decides row-wise.
"""

from repro.loadgen.schedule import FleetSchedule, LoadPhase
from repro.loadgen.driver import FleetDriver, InProcessTransport, SocketTransport
from repro.loadgen.report import LoadReport

__all__ = [
    "FleetDriver",
    "FleetSchedule",
    "InProcessTransport",
    "LoadPhase",
    "LoadReport",
    "SocketTransport",
]
