"""The fleet driver: vector simulators as serving clients.

:class:`FleetDriver` owns a fleet of simulated storage nodes — the
schedule's ``sessions`` split across B-major
:class:`~repro.env.vector_env.VectorStorageAllocationEnv` shards — and
drives them through a transport against one policy server.  Each step
of each phase is one sim-to-serve round trip:

1. every tenant submits its current raw observation as a ``decide``
   request (one micro-batched wave per shard; flash-crowd tenants
   submit ``burst_multiplier`` requests, extras discarded),
2. the applied actions advance the shard's simulator in lockstep,
3. churned tenants close and reopen their server sessions (the sim
   slot persists; the session handle is recycled through the table's
   free list) and stale probes replay pre-churn handles at the server.

Two transports speak to the same broker: :class:`InProcessTransport`
calls :meth:`~repro.serving.server.PolicyServer.submit_many` directly
(the 10^5-session path), :class:`SocketTransport` fans the same waves
over :class:`~repro.serving.netserver.PolicyClient` connections with
per-connection windows sized under the server's ``max_inflight`` so
back-pressure never rejects a deterministic run.  Because every
backend decides row-wise, the two transports produce byte-identical
:class:`~repro.loadgen.report.LoadReport` deterministic sections.
"""

from __future__ import annotations

import asyncio
import hashlib
import struct
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.env.vector_env import VectorStorageAllocationEnv
from repro.errors import ConfigurationError, ReproError, ServingError, StaleSessionError
from repro.loadgen.report import LoadReport
from repro.loadgen.schedule import FleetSchedule
from repro.serving.netserver import PolicyClient
from repro.serving.server import LatencyHistogram, PolicyServer
from repro.storage.simulator import StorageSystemConfig
from repro.utils.rng import PhiloxStreams, _stable_hash
from repro.workloads.generator import GeneratorConfig, StandardWorkloadGenerator
from repro.workloads.tenant_mix import ZipfianTenantMix

__all__ = ["FleetDriver", "InProcessTransport", "SocketTransport"]

_PACK = struct.Struct("<4i")


class InProcessTransport:
    """Waves go straight into the broker (`submit_many` + one flush)."""

    name = "inprocess"

    def __init__(self, server: PolicyServer) -> None:
        self.server = server

    async def open_sessions(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        slots = np.asarray(self.server.open_sessions(count), dtype=np.int64)
        gens = self.server.table.generation[slots].astype(np.int64)
        return slots, gens

    async def close_sessions(self, slots: np.ndarray, gens: np.ndarray) -> None:
        self.server.close_sessions(slots, expected_generation=gens)

    async def decide_wave(
        self,
        slots: np.ndarray,
        gens: np.ndarray,
        raw: np.ndarray,
        hist: LatencyHistogram,
    ) -> np.ndarray:
        start = time.perf_counter()
        tickets = self.server.submit_many(slots, raw, expected_generation=gens)
        self.server.flush()
        elapsed = time.perf_counter() - start
        # Every request of the wave shares the wave's wall time — the
        # in-process analogue of arrival→reply latency.
        hist.record_many(np.full(len(tickets), elapsed))
        return np.fromiter(
            (ticket.action for ticket in tickets), dtype=np.int64, count=len(tickets)
        )

    async def stale_probe(self, slot: int, gen: int, raw_row: np.ndarray) -> str:
        try:
            self.server.submit(int(slot), raw_row, expected_generation=int(gen))
        except StaleSessionError:
            return "stale"
        except ReproError:
            return "error"
        return "ok"

    async def active_sessions(self) -> int:
        return int(self.server.table.num_active)

    async def summary(self) -> Dict[str, object]:
        return {
            "transport": self.name,
            "occupancy": self.server.table.occupancy(),
            **self.server.stats().as_dict(),
        }


class SocketTransport:
    """The same waves over :class:`PolicyClient` connections.

    Session ``i`` of a wave always goes through connection ``i % N``
    (affinity), and each wave is issued in windows of
    ``per_connection_window`` requests per connection so a
    deterministic run never trips the server's ``BUSY`` back-pressure.
    Admin traffic (open/close/stats) rides connection 0.
    """

    name = "socket"

    def __init__(
        self, clients: Sequence[PolicyClient], per_connection_window: int = 32
    ) -> None:
        if not clients:
            raise ConfigurationError("socket transport needs at least one client")
        if per_connection_window <= 0:
            raise ConfigurationError("per_connection_window must be positive")
        self.clients = list(clients)
        self.window = int(per_connection_window)

    async def open_sessions(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        handles = await self.clients[0].open(count)
        slots = np.array([h[0] for h in handles], dtype=np.int64)
        gens = np.array([h[1] for h in handles], dtype=np.int64)
        return slots, gens

    async def close_sessions(self, slots: np.ndarray, gens: np.ndarray) -> None:
        handles = [[int(s), int(g)] for s, g in zip(slots, gens)]
        await self.clients[0].close_sessions(handles)

    async def decide_wave(
        self,
        slots: np.ndarray,
        gens: np.ndarray,
        raw: np.ndarray,
        hist: LatencyHistogram,
    ) -> np.ndarray:
        n = int(slots.shape[0])
        actions = np.zeros(n, dtype=np.int64)

        async def one(index: int) -> None:
            client = self.clients[index % len(self.clients)]
            start = time.perf_counter()
            action = await client.decide(
                (int(slots[index]), int(gens[index])), raw[index]
            )
            hist.record(time.perf_counter() - start)
            actions[index] = action

        chunk = self.window * len(self.clients)
        for begin in range(0, n, chunk):
            stop = min(begin + chunk, n)
            await asyncio.gather(*(one(i) for i in range(begin, stop)))
        return actions

    async def stale_probe(self, slot: int, gen: int, raw_row: np.ndarray) -> str:
        try:
            await self.clients[0].decide((int(slot), int(gen)), raw_row)
        except StaleSessionError:
            return "stale"
        except ServingError:
            return "error"
        return "ok"

    async def active_sessions(self) -> int:
        return int((await self.clients[0].stats())["active_sessions"])

    async def summary(self) -> Dict[str, object]:
        return {"transport": self.name, **(await self.clients[0].stats())}


class FleetDriver:
    """Run one :class:`FleetSchedule` against a policy server.

    All randomness — tenant mix, churn, flash-crowd membership,
    simulator streams, trace synthesis — derives from ``base_seed``
    through the Philox family (or stable hashes of it), so the
    resulting :class:`LoadReport`'s deterministic section is a pure
    function of ``(base_seed, schedule)``.
    """

    def __init__(
        self,
        schedule: FleetSchedule,
        transport,
        base_seed: int = 0,
        system_config: Optional[StorageSystemConfig] = None,
    ) -> None:
        schedule.validate()
        self.schedule = schedule
        self.transport = transport
        self.base_seed = int(base_seed)
        self.system_config = system_config or StorageSystemConfig()
        self.mix = ZipfianTenantMix(schedule.profile_list(), skew=schedule.zipf_skew)
        self._generator = StandardWorkloadGenerator(
            self.system_config,
            GeneratorConfig(target_load=schedule.target_load),
        )
        self._trace_cache: Dict[Tuple[str, int], object] = {}
        total = schedule.sessions
        # One profile per tenant, fixed for the tenant's lifetime.
        mix_draws = PhiloxStreams(self.base_seed, total, "fleet/mix").uniforms()
        self._profile_idx = self.mix.assign_indices(mix_draws)
        self._churn_streams = PhiloxStreams(self.base_seed, total, "fleet/churn")
        self._burst_streams = PhiloxStreams(self.base_seed, total, "fleet/burst")
        # serial -> session handle (parallel arrays), plus the most
        # recent pre-churn handle per serial for stale probes.
        self._slots = np.zeros(total, dtype=np.int64)
        self._gens = np.zeros(total, dtype=np.int64)
        self._stale_handles: Dict[int, Tuple[int, int]] = {}
        self._shards: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------
    def _trace(self, profile: str, variant: int):
        key = (profile, int(variant))
        trace = self._trace_cache.get(key)
        if trace is None:
            seed = _stable_hash(
                f"fleet-trace/{self.base_seed}/{profile}/{variant}"
            )
            trace = self._generator.generate(
                profile,
                duration=self.schedule.trace_duration,
                name=f"{profile}-v{variant}",
                rng=np.random.default_rng(seed),
            )
            self._trace_cache[key] = trace
        return trace

    def _reset_shard(self, shard: Dict[str, object]) -> None:
        serials: np.ndarray = shard["serials"]
        epoch: int = shard["epoch"]
        traces = [
            self._trace(
                self.mix.profiles[self._profile_idx[serial]],
                (serial + epoch) % self.schedule.trace_variants,
            )
            for serial in serials.tolist()
        ]
        # Unique episode ids across recycles keep every sim stream fresh
        # and reproducible: epoch e of global tenant s is episode
        # ``e * sessions + s`` of the "fleet/env" domain.
        episodes = serials.astype(np.uint64) + np.uint64(
            epoch * self.schedule.sessions
        )
        rngs = PhiloxStreams(self.base_seed, episodes, "fleet/env")
        shard["env"].reset(traces, rngs=rngs)

    async def _setup(self) -> None:
        schedule = self.schedule
        serials = np.arange(schedule.sessions, dtype=np.int64)
        self._shards = []
        for begin in range(0, schedule.sessions, schedule.shard_size):
            shard_serials = serials[begin : begin + schedule.shard_size]
            shard = {
                "env": VectorStorageAllocationEnv(self.system_config),
                "serials": shard_serials,
                "epoch": 0,
            }
            self._reset_shard(shard)
            self._shards.append(shard)
        slots, gens = await self.transport.open_sessions(schedule.sessions)
        if slots.shape[0] != schedule.sessions:
            raise ServingError(
                f"opened {slots.shape[0]} sessions, wanted {schedule.sessions}"
            )
        self._slots[:] = slots
        self._gens[:] = gens

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self) -> LoadReport:
        """Synchronous entry point (in-process transport, no outer loop)."""
        return asyncio.run(self.run_async())

    async def run_async(self) -> LoadReport:
        schedule = self.schedule
        report = LoadReport(
            {
                "base_seed": self.base_seed,
                "schedule": schedule.as_dict(),
                "schedule_digest": schedule.digest(),
                "transport": self.transport.name,
                "tenant_mix": self.mix.as_dict(),
            }
        )
        digest = hashlib.sha256()
        run_start = time.perf_counter()
        await self._setup()
        for phase_index, phase in enumerate(schedule.phases):
            hist = report.begin_phase(phase.name)
            phase_start = time.perf_counter()
            counters = {
                "name": phase.name,
                "steps": phase.steps,
                "decisions": 0,
                "probe_decisions": 0,
                "churn_cycles": 0,
                "stale_rejections": 0,
                "errors": 0,
            }
            burst_mask = np.zeros(schedule.sessions, dtype=bool)
            if phase.burst_multiplier > 1 and phase.burst_tenant_fraction > 0:
                # Correlated flash crowd: membership is drawn once per
                # phase, so the same tenants surge together every step.
                draws = self._burst_streams.uniforms()
                burst_mask = draws < phase.burst_tenant_fraction
            with telemetry.span(
                "fleet.phase", name=phase.name, steps=phase.steps
            ) as phase_span:
                for step in range(phase.steps):
                    for shard_index, shard in enumerate(self._shards):
                        serials: np.ndarray = shard["serials"]
                        env: VectorStorageAllocationEnv = shard["env"]
                        raw = env.raw_observations()
                        actions = await self.transport.decide_wave(
                            self._slots[serials], self._gens[serials], raw, hist
                        )
                        counters["decisions"] += int(actions.shape[0])
                        digest.update(
                            _PACK.pack(0, phase_index, step, shard_index)
                        )
                        digest.update(actions.tobytes())
                        shard_burst = burst_mask[serials]
                        if shard_burst.any():
                            extra = serials[shard_burst]
                            for _ in range(phase.burst_multiplier - 1):
                                probe_actions = await self.transport.decide_wave(
                                    self._slots[extra],
                                    self._gens[extra],
                                    raw[shard_burst],
                                    hist,
                                )
                                counters["probe_decisions"] += int(
                                    probe_actions.shape[0]
                                )
                                digest.update(probe_actions.tobytes())
                        env.step(actions)
                        if (
                            env.all_done
                            or env.dones.mean() >= schedule.recycle_threshold
                        ):
                            shard["epoch"] += 1
                            self._reset_shard(shard)
                            report.recycles += 1
                    await self._churn_step(phase, counters, digest)
                    await self._stale_probes(phase, counters, digest)
                    occupancy = await self.transport.active_sessions()
                    report.occupancy_timeline.append(occupancy)
                    digest.update(_PACK.pack(1, phase_index, step, occupancy))
                phase_span.set("decisions", counters["decisions"])
                phase_span.set("probe_decisions", counters["probe_decisions"])
            report.finish_phase(counters, time.perf_counter() - phase_start)
        report.elapsed_seconds = time.perf_counter() - run_start
        report.digest = digest.hexdigest()
        report.server_summary = await self.transport.summary()
        return report

    # ------------------------------------------------------------------
    # Churn + stale probes
    # ------------------------------------------------------------------
    async def _churn_step(self, phase, counters, digest) -> None:
        draws = self._churn_streams.uniforms()
        if phase.churn_rate <= 0.0:
            return
        churned = np.nonzero(draws < phase.churn_rate)[0]
        if churned.size == 0:
            return
        old_slots = self._slots[churned].copy()
        old_gens = self._gens[churned].copy()
        await self.transport.close_sessions(old_slots, old_gens)
        new_slots, new_gens = await self.transport.open_sessions(int(churned.size))
        self._slots[churned] = new_slots
        self._gens[churned] = new_gens
        for serial, slot, gen in zip(
            churned.tolist(), old_slots.tolist(), old_gens.tolist()
        ):
            self._stale_handles[serial] = (slot, gen)
        counters["churn_cycles"] += int(churned.size)
        digest.update(churned.astype(np.int64).tobytes())
        digest.update(new_slots.astype(np.int64).tobytes())
        digest.update(new_gens.astype(np.int64).tobytes())

    async def _stale_probes(self, phase, counters, digest) -> None:
        if phase.stale_probes_per_step <= 0 or not self._stale_handles:
            return
        serials = sorted(self._stale_handles)[: phase.stale_probes_per_step]
        for serial in serials:
            slot, gen = self._stale_handles[serial]
            shard = self._shards[serial // self.schedule.shard_size]
            row = int(serial - shard["serials"][0])
            raw_row = shard["env"].raw_observations()[row]
            status = await self.transport.stale_probe(slot, gen, raw_row)
            if status == "stale":
                counters["stale_rejections"] += 1
            elif status == "error":
                counters["errors"] += 1
            digest.update(
                f"probe/{serial}/{slot}/{gen}/{status}".encode("ascii")
            )
