"""Declarative load schedules for the fleet harness.

A :class:`FleetSchedule` is the full, serialisable description of one
load run — fleet size and sharding, tenant mix skew, trace parameters,
and an ordered list of :class:`LoadPhase` entries (steady state, churn
storms, flash crowds...).  Everything the driver randomises is derived
from ``(base_seed, schedule)`` through the Philox rng family, so the
schedule's :meth:`~FleetSchedule.digest` is part of every
:class:`~repro.loadgen.report.LoadReport`: two reports are comparable
only if their schedule digests match, the same refusal discipline the
benchmark regression guards apply to kernel/rng_family stamps.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.workloads.profiles import profile_names

__all__ = ["FleetSchedule", "LoadPhase"]


@dataclass
class LoadPhase:
    """One contiguous stretch of load with fixed knobs.

    churn_rate:
        Per-step probability that a session closes its server-side
        handle and reopens (the storage node persists; its *session*
        is recycled through the table's free list).
    burst_multiplier / burst_tenant_fraction:
        Flash-crowd shape: a correlated subset of the fleet (drawn once
        per phase) submits ``burst_multiplier`` decision requests per
        interval instead of 1; the extra probes hit the server like any
        decision but their actions are not applied to the simulator.
    stale_probes_per_step:
        Deliberate stale-handle submissions per step (pre-churn handles
        replayed at the server), pinning the STALE_SESSION path under
        load.
    """

    name: str
    steps: int
    churn_rate: float = 0.0
    burst_multiplier: int = 1
    burst_tenant_fraction: float = 0.0
    stale_probes_per_step: int = 0

    def validate(self) -> None:
        if not self.name:
            raise ConfigurationError("load phase needs a name")
        if self.steps <= 0:
            raise ConfigurationError(f"phase {self.name!r}: steps must be positive")
        if not 0.0 <= self.churn_rate <= 1.0:
            raise ConfigurationError(
                f"phase {self.name!r}: churn_rate must be in [0, 1]"
            )
        if self.burst_multiplier < 1:
            raise ConfigurationError(
                f"phase {self.name!r}: burst_multiplier must be >= 1"
            )
        if not 0.0 <= self.burst_tenant_fraction <= 1.0:
            raise ConfigurationError(
                f"phase {self.name!r}: burst_tenant_fraction must be in [0, 1]"
            )
        if self.stale_probes_per_step < 0:
            raise ConfigurationError(
                f"phase {self.name!r}: stale_probes_per_step must be >= 0"
            )

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "steps": int(self.steps),
            "churn_rate": float(self.churn_rate),
            "burst_multiplier": int(self.burst_multiplier),
            "burst_tenant_fraction": float(self.burst_tenant_fraction),
            "stale_probes_per_step": int(self.stale_probes_per_step),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "LoadPhase":
        return cls(
            name=str(payload["name"]),
            steps=int(payload["steps"]),
            churn_rate=float(payload.get("churn_rate", 0.0)),
            burst_multiplier=int(payload.get("burst_multiplier", 1)),
            burst_tenant_fraction=float(payload.get("burst_tenant_fraction", 0.0)),
            stale_probes_per_step=int(payload.get("stale_probes_per_step", 0)),
        )


def _default_phases() -> List[LoadPhase]:
    return [
        LoadPhase(name="warmup", steps=2),
        LoadPhase(
            name="churn",
            steps=3,
            churn_rate=0.05,
            stale_probes_per_step=2,
        ),
        LoadPhase(
            name="flash_crowd",
            steps=3,
            churn_rate=0.01,
            burst_multiplier=3,
            burst_tenant_fraction=0.25,
        ),
    ]


@dataclass
class FleetSchedule:
    """The serialisable description of one fleet load run.

    sessions / shard_size:
        Fleet size and the batch size of each backing vector simulator
        (sessions are split into ``ceil(sessions / shard_size)`` shards
        stepped in lockstep).
    trace_duration / trace_variants / target_load:
        Workload traces: each tenant replays one of ``trace_variants``
        cached variants of its profile's trace (``trace_duration``
        intervals each, cycled on episode recycle).
    zipf_skew / profiles:
        Tenant mix — Zipfian over ``profiles`` in rank order (defaults
        to the 12 standard profiles).
    recycle_threshold:
        When a shard's done fraction reaches this, the whole shard
        resets onto its tenants' next trace variants (the storage nodes
        persist; sessions are *not* reopened by a recycle).
    """

    sessions: int = 1024
    shard_size: int = 512
    trace_duration: int = 12
    trace_variants: int = 2
    target_load: float = 0.7
    zipf_skew: float = 1.1
    recycle_threshold: float = 1.0
    profiles: Optional[Sequence[str]] = None
    phases: List[LoadPhase] = field(default_factory=_default_phases)

    def validate(self) -> None:
        if self.sessions <= 0:
            raise ConfigurationError("sessions must be positive")
        if self.shard_size <= 0:
            raise ConfigurationError("shard_size must be positive")
        if self.trace_duration <= 0:
            raise ConfigurationError("trace_duration must be positive")
        if self.trace_variants <= 0:
            raise ConfigurationError("trace_variants must be positive")
        if not 0.0 < self.recycle_threshold <= 1.0:
            raise ConfigurationError("recycle_threshold must be in (0, 1]")
        if self.zipf_skew < 0:
            raise ConfigurationError("zipf_skew must be non-negative")
        if not self.phases:
            raise ConfigurationError("schedule needs at least one phase")
        names = [phase.name for phase in self.phases]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate phase names: {names}")
        for phase in self.phases:
            phase.validate()
        if self.profile_list() == []:
            raise ConfigurationError("schedule needs at least one profile")

    def profile_list(self) -> List[str]:
        return (
            list(self.profiles) if self.profiles is not None else profile_names()
        )

    @property
    def total_steps(self) -> int:
        return sum(phase.steps for phase in self.phases)

    def num_shards(self) -> int:
        return -(-self.sessions // self.shard_size)

    def as_dict(self) -> Dict[str, object]:
        return {
            "sessions": int(self.sessions),
            "shard_size": int(self.shard_size),
            "trace_duration": int(self.trace_duration),
            "trace_variants": int(self.trace_variants),
            "target_load": float(self.target_load),
            "zipf_skew": float(self.zipf_skew),
            "recycle_threshold": float(self.recycle_threshold),
            "profiles": self.profile_list(),
            "phases": [phase.as_dict() for phase in self.phases],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FleetSchedule":
        return cls(
            sessions=int(payload["sessions"]),
            shard_size=int(payload["shard_size"]),
            trace_duration=int(payload.get("trace_duration", 12)),
            trace_variants=int(payload.get("trace_variants", 2)),
            target_load=float(payload.get("target_load", 0.7)),
            zipf_skew=float(payload.get("zipf_skew", 1.1)),
            recycle_threshold=float(payload.get("recycle_threshold", 1.0)),
            profiles=list(payload["profiles"]) if "profiles" in payload else None,
            phases=[LoadPhase.from_dict(p) for p in payload["phases"]],
        )

    def digest(self) -> str:
        """Content hash of the schedule (reports refuse mismatched digests)."""
        canonical = json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
