"""repro — Learning-Aided Heuristics Design for Storage Systems.

A from-scratch reproduction of Tang et al., "Learning-Aided Heuristics
Design for Storage System" (SIGMOD 2021): a storage-system simulator, a
numpy-based recurrent A2C stack, quantized bottleneck networks, finite-
state-machine extraction/interpretation and the baselines the paper
compares against.

Most users only need the high-level entry points re-exported here::

    from repro import LearningAidedPipeline, PipelineConfig
    result = LearningAidedPipeline(PipelineConfig()).run()
"""

from repro.errors import ReproError
from repro.storage import StorageSimulator, StorageSystemConfig, WorkloadTrace
from repro.workloads import StandardWorkloadGenerator, RealTraceSampler
from repro.env import StorageAllocationEnv, RewardConfig
from repro.agents import DefaultPolicy, HandcraftedFSMPolicy
from repro.drl import RecurrentPolicyValueNet, A2CTrainer, CurriculumTrainer, DRLPolicyAgent
from repro.qbn import QuantizedBottleneckNetwork, QBNTrainer
from repro.fsm import FiniteStateMachine, FSMExtractor, FSMPolicyAgent
from repro.pipeline import LearningAidedPipeline, PipelineConfig, PipelineResult

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "StorageSimulator",
    "StorageSystemConfig",
    "WorkloadTrace",
    "StandardWorkloadGenerator",
    "RealTraceSampler",
    "StorageAllocationEnv",
    "RewardConfig",
    "DefaultPolicy",
    "HandcraftedFSMPolicy",
    "RecurrentPolicyValueNet",
    "A2CTrainer",
    "CurriculumTrainer",
    "DRLPolicyAgent",
    "QuantizedBottleneckNetwork",
    "QBNTrainer",
    "FiniteStateMachine",
    "FSMExtractor",
    "FSMPolicyAgent",
    "LearningAidedPipeline",
    "PipelineConfig",
    "PipelineResult",
    "__version__",
]
