"""Deploying an extracted FSM as a controller."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.agents.base import Agent
from repro.env.observation import Observation, ObservationEncoder
from repro.errors import ExtractionError
from repro.fsm.extraction import ExtractionResult
from repro.fsm.generalize import NearestObservationMatcher
from repro.fsm.machine import FiniteStateMachine, StateKey
from repro.qbn.autoencoder import QuantizedBottleneckNetwork
from repro.qbn.quantize import code_key
from repro.storage.migration import MigrationAction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.compiled_fsm import CompiledFSMPolicy


class FSMPolicyAgent(Agent):
    """Runs the extracted finite state machine as a white-box controller.

    Each decision quantises the current observation with the observation
    QBN; if the resulting code was never seen during extraction, the
    nearest-observation matcher substitutes the closest known code
    (paper Section 3.2.2).  The machine then advances one transition and
    emits the action of the new state.
    """

    name = "extracted_fsm"

    def __init__(
        self,
        fsm: FiniteStateMachine,
        observation_qbn: QuantizedBottleneckNetwork,
        encoder: ObservationEncoder,
        matcher: Optional[NearestObservationMatcher] = None,
    ) -> None:
        if fsm.num_states == 0:
            raise ExtractionError("cannot deploy an FSM with no states")
        self.fsm = fsm
        self.observation_qbn = observation_qbn
        self.encoder = encoder
        self.matcher = matcher
        self._state: Optional[StateKey] = None
        self.unseen_observation_count = 0

    @classmethod
    def from_extraction(
        cls, result: ExtractionResult, encoder: ObservationEncoder,
        observation_qbn: QuantizedBottleneckNetwork,
    ) -> "FSMPolicyAgent":
        """Convenience constructor from an :class:`ExtractionResult`."""
        return cls(
            fsm=result.fsm,
            observation_qbn=observation_qbn,
            encoder=encoder,
            matcher=result.matcher,
        )

    def reset(self) -> None:
        self._state = self._starting_state()
        self.unseen_observation_count = 0

    def _starting_state(self) -> StateKey:
        if self.fsm.initial_state is not None and self.fsm.initial_state in self.fsm.states:
            return self.fsm.initial_state
        # Fall back to the most-visited state.
        return max(self.fsm.states, key=lambda code: self.fsm.states[code].visit_count)

    def act(self, observation: Observation) -> MigrationAction:
        if self._state is None:
            self.reset()
        normalized = self.encoder.normalize(observation)
        observation_code = code_key(self.observation_qbn.discrete_code(normalized))
        known = observation_code in self.fsm.observation_prototypes
        if not known and self.matcher is not None:
            # The code is already established as unseen, so the matcher's
            # exact-encoder shortcut cannot fire; going straight to the
            # shared nearest-prototype resolution keeps this agent and the
            # compiled serving fast path on one code path (and one
            # tie-break order) for fallback decisions.
            observation_code = self.matcher.key_at(self.matcher.match_index(normalized))
            self.unseen_observation_count += 1
        self._state, action = self.fsm.step(self._state, observation_code)
        return action

    def compiled_routable(self) -> bool:
        """True when the dense-table compilation replays this agent bit for bit.

        The compiled fast path resolves every non-prototype code through
        nearest-prototype fallback over the *machine's* prototype table;
        the interpreted agent resolves through its *matcher*.  The two
        agree decision for decision exactly when the matcher indexes the
        machine's prototypes in the machine's own order (same keys, same
        vectors — so ``nearest_prototype_rows`` breaks ties identically),
        or when the machine has no prototypes at all and no matcher is
        installed (both sides then self-loop on truly unseen codes and
        resolve transition-only codes exactly).
        """
        prototypes = self.fsm.observation_prototypes
        if self.matcher is None:
            # Without a matcher the interpreted agent never substitutes
            # unseen codes, but the compiled tables would fall back to
            # the nearest prototype whenever one exists.
            return not prototypes
        if not prototypes or self.matcher.keys != list(prototypes):
            return False
        machine_matrix = np.stack(
            [np.asarray(vector, dtype=float) for vector in prototypes.values()]
        )
        return np.array_equal(self.matcher.prototype_matrix, machine_matrix)

    def compile(self) -> "CompiledFSMPolicy":
        """Compile this agent's machine into its dense-table equivalent.

        Raises :class:`ExtractionError` when the compiled tables would
        not be decision-for-decision identical (see
        :meth:`compiled_routable`) — callers that want a best-effort
        answer should check routability first and keep the interpreted
        agent otherwise.
        """
        from repro.engine.compiled_fsm import CompiledFSMPolicy

        if not self.compiled_routable():
            raise ExtractionError(
                "this agent's matcher does not mirror the machine's prototype "
                "table (different keys, order or vectors) — the compiled "
                "fallback would resolve unseen observations differently; "
                "keep the interpreted agent"
            )
        metric = self.matcher.metric_name if self.matcher is not None else "euclidean"
        return CompiledFSMPolicy.compile(
            self.fsm, self.observation_qbn, encoder=self.encoder, metric=metric
        )

    @property
    def current_state_label(self) -> str:
        if self._state is None:
            self.reset()
        return self.fsm.states[self._state].label
