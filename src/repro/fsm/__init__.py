"""Finite-state-machine extraction, generalisation and interpretation.

The end product of the paper's pipeline: a white-box finite state
machine read off the quantised transition table of the trained DRL
policy (Section 3.2), hardened for unseen observations via
nearest-observation matching (Section 3.2.2), and interpreted for the
domain experts through fan-in/fan-out statistics and observation-history
windows (Section 3.3, Figures 5 and 6).
"""

from repro.fsm.machine import FSMState, FiniteStateMachine
from repro.fsm.extraction import FSMExtractor, ExtractionConfig, ExtractionResult
from repro.fsm.generalize import (
    NearestObservationMatcher,
    SIMILARITY_METRICS,
    nearest_prototype_rows,
)
from repro.fsm.serialize import fsm_from_payload, fsm_to_payload, load_fsm, save_fsm
from repro.fsm.minimize import merge_equivalent_states, prune_rare_states
from repro.fsm.interpretation import (
    FanInOutStats,
    StateHistoryProfile,
    fan_in_out_statistics,
    history_profile,
    interpret_fsm,
)
from repro.fsm.render import fsm_to_dot, fsm_summary_table
from repro.fsm.agent import FSMPolicyAgent

__all__ = [
    "FSMState",
    "FiniteStateMachine",
    "FSMExtractor",
    "ExtractionConfig",
    "ExtractionResult",
    "NearestObservationMatcher",
    "SIMILARITY_METRICS",
    "nearest_prototype_rows",
    "fsm_to_payload",
    "fsm_from_payload",
    "save_fsm",
    "load_fsm",
    "merge_equivalent_states",
    "prune_rare_states",
    "FanInOutStats",
    "StateHistoryProfile",
    "fan_in_out_statistics",
    "history_profile",
    "interpret_fsm",
    "fsm_to_dot",
    "fsm_summary_table",
    "FSMPolicyAgent",
]
