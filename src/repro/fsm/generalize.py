"""Generalisation to unseen observations (paper Section 3.2.2, second method).

The extracted FSM only knows the observation codes it saw during
extraction.  At deployment time an unseen observation is classified as
its closest known observation — "the state space has a certain
continuity and similar observations could trigger similar actions" —
using Euclidean distance or cosine similarity over the (continuous,
normalised) observation vectors.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import ExtractionError

ObservationKey = Tuple[int, ...]


def _euclidean(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.linalg.norm(a - b))


def _cosine_distance(a: np.ndarray, b: np.ndarray) -> float:
    norm = np.linalg.norm(a) * np.linalg.norm(b)
    if norm <= 1e-12:
        return 1.0
    return 1.0 - float(np.dot(a, b) / norm)


SIMILARITY_METRICS: Dict[str, Callable[[np.ndarray, np.ndarray], float]] = {
    "euclidean": _euclidean,
    "cosine": _cosine_distance,
}


def nearest_prototype_rows(
    matrix: np.ndarray, vectors: np.ndarray, metric: str = "euclidean"
) -> np.ndarray:
    """Row indices of the prototypes in ``matrix`` closest to each vector.

    The one nearest-prototype resolution shared by the scalar
    :class:`NearestObservationMatcher` and the batched serving fast path
    (:class:`repro.serving.compiled_fsm.CompiledFSMPolicy`), so both
    layers fall back to *identical* prototypes for unseen observations.
    Row ``i`` of the result is bit-identical to resolving ``vectors[i]``
    alone: the euclidean branch reduces the (fixed-length) feature axis
    with the same pairwise summation regardless of how many query rows
    share the batch, and ties break to the lowest row index either way.
    """
    if metric not in SIMILARITY_METRICS:
        raise ExtractionError(
            f"unknown similarity metric {metric!r}; available: {sorted(SIMILARITY_METRICS)}"
        )
    matrix = np.asarray(matrix, dtype=float)
    vectors = np.asarray(vectors, dtype=float)
    if vectors.ndim == 1:
        vectors = vectors[None, :]
    if metric == "euclidean":
        diffs = matrix[None, :, :] - vectors[:, None, :]
        distances = np.sqrt((diffs * diffs).sum(axis=-1))
        return distances.argmin(axis=1)
    # Cosine is never on the serving hot path; the scalar loop keeps it
    # byte-for-byte the historical per-row computation.
    distance = SIMILARITY_METRICS[metric]
    return np.array(
        [
            int(np.argmin([distance(row, vector) for row in matrix]))
            for vector in vectors
        ],
        dtype=np.int64,
    )


class NearestObservationMatcher:
    """Maps observation vectors to the nearest known observation code."""

    def __init__(
        self,
        prototypes: Dict[ObservationKey, np.ndarray],
        metric: str = "euclidean",
        encoder: Optional[Callable[[np.ndarray], ObservationKey]] = None,
    ) -> None:
        if not prototypes:
            raise ExtractionError("matcher needs at least one known observation prototype")
        if metric not in SIMILARITY_METRICS:
            raise ExtractionError(
                f"unknown similarity metric {metric!r}; available: {sorted(SIMILARITY_METRICS)}"
            )
        self.metric_name = metric
        self._distance = SIMILARITY_METRICS[metric]
        self._encoder = encoder
        self._keys = list(prototypes.keys())
        self._matrix = np.stack([np.asarray(prototypes[k], dtype=float) for k in self._keys])

    @property
    def num_prototypes(self) -> int:
        return len(self._keys)

    @property
    def keys(self) -> list:
        """Prototype codes in their stable (insertion) order (copy).

        Row ``i`` of the distance matrix corresponds to ``keys[i]``; the
        compiled serving path relies on this ordering matching its own
        prototype table so both resolve ties identically.
        """
        return list(self._keys)

    @property
    def prototype_matrix(self) -> np.ndarray:
        """Stacked prototype vectors; row ``i`` is ``keys[i]``.

        The backing array, not a copy (treat as read-only) — routing
        code compares it against a compiled artifact's prototype table
        to decide whether the dense fast path replays this matcher's
        tie-breaks exactly.
        """
        return self._matrix

    def key_at(self, index: int) -> ObservationKey:
        """The prototype code at ``index`` (no list copy — hot fallback path)."""
        return self._keys[index]

    def match(self, observation_vector: np.ndarray) -> ObservationKey:
        """Return the known observation code closest to ``observation_vector``.

        If an encoder was provided and it maps the vector to a code that
        is already known, that exact code is returned without a search.
        """
        vector = np.asarray(observation_vector, dtype=float)
        if self._encoder is not None:
            exact = self._encoder(vector)
            if exact in set(self._keys):
                return exact
        return self._keys[self.match_index(vector)]

    def match_index(self, observation_vector: np.ndarray) -> int:
        """Index (into :attr:`keys`) of the nearest prototype."""
        vector = np.asarray(observation_vector, dtype=float)
        return int(
            nearest_prototype_rows(self._matrix, vector[None, :], self.metric_name)[0]
        )

    def distance_to_nearest(self, observation_vector: np.ndarray) -> float:
        """Distance from ``observation_vector`` to its nearest prototype."""
        vector = np.asarray(observation_vector, dtype=float)
        return float(
            min(self._distance(row, vector) for row in self._matrix)
        )
