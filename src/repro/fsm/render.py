"""Rendering of extracted FSMs as Graphviz DOT and text tables (Figure 5)."""

from __future__ import annotations

from typing import Sequence

from repro.fsm.extraction import TransitionRecord
from repro.fsm.interpretation import fan_in_out_statistics
from repro.fsm.machine import FiniteStateMachine
from repro.utils.tables import format_table


def fsm_to_dot(fsm: FiniteStateMachine, name: str = "extracted_fsm") -> str:
    """Render the machine as a Graphviz DOT digraph.

    Node line width encodes visit counts (the paper's Figure 5 encodes
    the same information with circle thickness).
    """
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=circle];"]
    max_visits = max((state.visit_count for state in fsm.states.values()), default=1)
    for state in fsm.states_by_id():
        penwidth = 1.0 + 4.0 * (state.visit_count / max_visits if max_visits else 0.0)
        shape_attrs = f'label="{state.label}\\n{state.action_name}", penwidth={penwidth:.2f}'
        if fsm.initial_state is not None and state.code == fsm.initial_state:
            shape_attrs += ", style=bold"
        lines.append(f'  "{state.label}" [{shape_attrs}];')
    for (source, destination), count in sorted(
        fsm.transition_counts.items(), key=lambda item: -item[1]
    ):
        if source not in fsm.states or destination not in fsm.states:
            continue
        src_label = fsm.states[source].label
        dst_label = fsm.states[destination].label
        lines.append(f'  "{src_label}" -> "{dst_label}" [label="{count}"];')
    lines.append("}")
    return "\n".join(lines)


def fsm_summary_table(
    fsm: FiniteStateMachine, records: Sequence[TransitionRecord] | None = None
) -> str:
    """Text table of states, actions, visits and (optionally) utilisation shifts."""
    headers = ["state", "action", "visits", "self_loops", "out_degree"]
    include_shifts = bool(records)
    if include_shifts:
        headers += ["d_util_N", "d_util_KV", "d_util_RV"]
        fan_stats = fan_in_out_statistics(fsm, records)

    rows = []
    for state in fsm.states_by_id():
        successors = fsm.successors(state.code)
        self_loops = successors.get(state.code, 0)
        out_degree = len([dst for dst in successors if dst != state.code])
        row = [state.label, state.action_name, state.visit_count, self_loops, out_degree]
        if include_shifts:
            shift = fan_stats[state.label].utilization_shift()
            if shift is None:
                row += ["-", "-", "-"]
            else:
                row += [f"{shift[0]:+.3f}", f"{shift[1]:+.3f}", f"{shift[2]:+.3f}"]
        rows.append(row)
    return format_table(headers, rows, title=f"Extracted FSM ({fsm.num_states} states)")
