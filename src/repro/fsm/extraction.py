"""Extraction of a finite state machine from the trained recurrent policy.

Given the transition dataset ``<h_{t-1}, h_t, o_t, a_t>`` collected by
running the trained policy, and the two trained QBNs, extraction
proceeds exactly as in paper Section 3.2.1:

1. quantise every hidden state and observation with the QBNs, producing
   discrete codes ``bh`` and ``bo``;
2. the distinct ``bh`` codes become the FSM states; each state is
   labelled with the (majority) action the policy emits from it;
3. the tuples ``(bh_{t-1}, bo_t) -> bh_t`` populate the transition table;
4. optionally, equivalent states are merged and rarely visited states
   pruned (Koul et al.'s minimisation step);
5. the continuous observations are kept per transition so the
   interpretation stage (Section 3.3) can compute fan-in/fan-out and
   history statistics, and so unseen observations can be matched to
   their nearest known observation at deployment time (Section 3.2.2).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ExtractionError
from repro.fsm.generalize import NearestObservationMatcher
from repro.fsm.machine import FiniteStateMachine, StateKey
from repro.fsm.minimize import merge_equivalent_states, prune_rare_states
from repro.qbn.autoencoder import QuantizedBottleneckNetwork
from repro.qbn.dataset import TransitionDataset
from repro.qbn.quantize import code_key
from repro.storage.migration import MigrationAction


@dataclass(frozen=True)
class TransitionRecord:
    """One dataset transition annotated with its discrete codes."""

    episode: int
    step: int
    source_state: StateKey
    destination_state: StateKey
    observation_code: Tuple[int, ...]
    action: int
    raw_observation: np.ndarray
    normalized_observation: np.ndarray


@dataclass(frozen=True)
class ExtractionConfig:
    """Options of the extraction stage."""

    merge_equivalent: bool = True
    min_state_visits: int = 0
    similarity_metric: str = "euclidean"

    def __post_init__(self) -> None:
        if self.min_state_visits < 0:
            raise ExtractionError("min_state_visits must be non-negative")


@dataclass
class ExtractionResult:
    """The extracted machine plus everything needed to interpret and deploy it."""

    fsm: FiniteStateMachine
    records: List[TransitionRecord] = field(default_factory=list)
    matcher: Optional[NearestObservationMatcher] = None
    num_raw_states: int = 0
    num_observation_codes: int = 0

    def summary(self) -> Dict[str, float]:
        return {
            "states": float(self.fsm.num_states),
            "raw_states": float(self.num_raw_states),
            "transitions": float(self.fsm.num_transitions),
            "observation_codes": float(self.num_observation_codes),
            "records": float(len(self.records)),
        }


class FSMExtractor:
    """Builds a :class:`FiniteStateMachine` from a policy, its QBNs and rollouts."""

    def __init__(
        self,
        observation_qbn: QuantizedBottleneckNetwork,
        hidden_qbn: QuantizedBottleneckNetwork,
        config: Optional[ExtractionConfig] = None,
    ) -> None:
        self.observation_qbn = observation_qbn
        self.hidden_qbn = hidden_qbn
        self.config = config or ExtractionConfig()

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def extract(self, dataset: TransitionDataset) -> ExtractionResult:
        if len(dataset) == 0:
            raise ExtractionError("cannot extract an FSM from an empty dataset")

        hidden_before_codes = self.hidden_qbn.discrete_code(dataset.hidden_before)
        hidden_after_codes = self.hidden_qbn.discrete_code(dataset.hidden_after)
        observation_codes = self.observation_qbn.discrete_code(dataset.observations)

        source_keys = [code_key(row) for row in hidden_before_codes]
        destination_keys = [code_key(row) for row in hidden_after_codes]
        observation_keys = [code_key(row) for row in observation_codes]

        # Action of a state = majority action emitted when the policy's
        # hidden state quantises to that code.
        action_votes: Dict[StateKey, Counter] = defaultdict(Counter)
        visit_counts: Dict[StateKey, int] = defaultdict(int)
        for destination, action in zip(destination_keys, dataset.actions):
            action_votes[destination][int(action)] += 1
            visit_counts[destination] += 1

        fsm = FiniteStateMachine()
        all_states = set(source_keys) | set(destination_keys)
        for state in sorted(all_states):
            votes = action_votes.get(state)
            action = (
                MigrationAction(votes.most_common(1)[0][0])
                if votes
                else MigrationAction.NOOP
            )
            added = fsm.add_state(state, action)
            added.visit_count = visit_counts.get(state, 0)

        records: List[TransitionRecord] = []
        for i in range(len(dataset)):
            fsm.add_transition(
                source_keys[i],
                observation_keys[i],
                destination_keys[i],
                observation_vector=dataset.observations[i],
            )
            records.append(
                TransitionRecord(
                    episode=int(dataset.episode_ids[i]),
                    step=int(dataset.step_ids[i]),
                    source_state=source_keys[i],
                    destination_state=destination_keys[i],
                    observation_code=observation_keys[i],
                    action=int(dataset.actions[i]),
                    raw_observation=dataset.raw_observations[i],
                    normalized_observation=dataset.observations[i],
                )
            )

        # The initial state is the quantisation of the all-zero GRU state.
        zero_hidden = np.zeros(dataset.hidden_dim)
        initial_key = code_key(self.hidden_qbn.discrete_code(zero_hidden))
        if initial_key not in fsm.states:
            fsm.add_state(initial_key, MigrationAction.NOOP)
        fsm.initial_state = initial_key

        num_raw_states = fsm.num_states

        state_rename: Dict[StateKey, StateKey] = {}
        if self.config.min_state_visits > 0:
            state_rename.update(prune_rare_states(fsm, self.config.min_state_visits))
        if self.config.merge_equivalent:
            state_rename.update(merge_equivalent_states(fsm))
        if state_rename:
            records = [self._remap_record(record, state_rename) for record in records]

        fsm.relabel()
        fsm.validate()

        matcher = NearestObservationMatcher(
            fsm.observation_prototypes,
            metric=self.config.similarity_metric,
            encoder=lambda vector: code_key(self.observation_qbn.discrete_code(vector)),
        )
        return ExtractionResult(
            fsm=fsm,
            records=records,
            matcher=matcher,
            num_raw_states=num_raw_states,
            num_observation_codes=len(set(observation_keys)),
        )

    @staticmethod
    def _remap_record(
        record: TransitionRecord, rename: Dict[StateKey, StateKey]
    ) -> TransitionRecord:
        def resolve(key: StateKey) -> StateKey:
            seen = set()
            while key in rename and key not in seen:
                seen.add(key)
                key = rename[key]
            return key

        return TransitionRecord(
            episode=record.episode,
            step=record.step,
            source_state=resolve(record.source_state),
            destination_state=resolve(record.destination_state),
            observation_code=record.observation_code,
            action=record.action,
            raw_observation=record.raw_observation,
            normalized_observation=record.normalized_observation,
        )
