"""JSON persistence for extracted finite state machines.

A trained FSM is the deployable end product of the pipeline, so it has
to outlive the process that extracted it.  :func:`save_fsm` writes the
complete machine — states, transition table, transition counts,
observation prototypes and the start state — as one JSON document via
the atomic writer in :mod:`repro.utils.serialization`, and
:func:`load_fsm` rebuilds a machine that is equivalent in every way the
serving layer can observe.

Two properties matter beyond plain data fidelity:

* **insertion order** of the ``states``, ``transitions`` and
  ``observation_prototypes`` dicts is preserved (JSON arrays), because
  the compiled serving tables and the nearest-prototype matcher derive
  their row ordering — and therefore their argmin tie-breaks — from it;
* prototype vectors roundtrip **bit-exactly** (Python's ``repr``-based
  float JSON encoding is lossless for binary64), so a compiled artifact
  built from a loaded FSM matches one built before saving.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import SerializationError
from repro.fsm.machine import FiniteStateMachine, FSMState
from repro.storage.migration import MigrationAction
from repro.utils.serialization import PathLike, load_json, save_json

FSM_FORMAT_VERSION = 1


def fsm_to_payload(fsm: FiniteStateMachine) -> Dict[str, Any]:
    """The machine as a JSON-compatible dict (see :func:`save_fsm`)."""
    return {
        "format_version": FSM_FORMAT_VERSION,
        "states": [
            {
                "code": list(code),
                "state_id": state.state_id,
                "action": int(state.action),
                "visit_count": state.visit_count,
            }
            for code, state in fsm.states.items()
        ],
        "transitions": [
            {"source": list(source), "observation": list(observation), "destination": list(destination)}
            for (source, observation), destination in fsm.transitions.items()
        ],
        "transition_counts": [
            {"source": list(source), "destination": list(destination), "count": count}
            for (source, destination), count in fsm.transition_counts.items()
        ],
        "observation_prototypes": [
            {"code": list(code), "vector": vector.tolist()}
            for code, vector in fsm.observation_prototypes.items()
        ],
        "initial_state": list(fsm.initial_state) if fsm.initial_state is not None else None,
    }


def fsm_from_payload(payload: Dict[str, Any]) -> FiniteStateMachine:
    """Rebuild a machine from :func:`fsm_to_payload` output and validate it."""
    import numpy as np

    version = payload.get("format_version")
    if version != FSM_FORMAT_VERSION:
        raise SerializationError(
            f"unsupported FSM format version {version!r} (expected {FSM_FORMAT_VERSION})"
        )
    fsm = FiniteStateMachine()
    for entry in payload["states"]:
        code = tuple(int(c) for c in entry["code"])
        fsm.states[code] = FSMState(
            state_id=int(entry["state_id"]),
            code=code,
            action=MigrationAction(int(entry["action"])),
            visit_count=int(entry["visit_count"]),
        )
    for entry in payload["transitions"]:
        source = tuple(int(c) for c in entry["source"])
        observation = tuple(int(c) for c in entry["observation"])
        destination = tuple(int(c) for c in entry["destination"])
        fsm.transitions[(source, observation)] = destination
    for entry in payload["transition_counts"]:
        pair = (
            tuple(int(c) for c in entry["source"]),
            tuple(int(c) for c in entry["destination"]),
        )
        fsm.transition_counts[pair] = int(entry["count"])
    for entry in payload["observation_prototypes"]:
        code = tuple(int(c) for c in entry["code"])
        fsm.observation_prototypes[code] = np.asarray(entry["vector"], dtype=float)
    if payload.get("initial_state") is not None:
        fsm.initial_state = tuple(int(c) for c in payload["initial_state"])
    fsm.validate()
    return fsm


def save_fsm(path: PathLike, fsm: FiniteStateMachine) -> None:
    """Persist ``fsm`` to ``path`` as JSON, atomically."""
    fsm.validate()
    save_json(path, fsm_to_payload(fsm))


def load_fsm(path: PathLike) -> FiniteStateMachine:
    """Load a machine written by :func:`save_fsm` (validated on load)."""
    return fsm_from_payload(load_json(path))
