"""The finite state machine data structure.

States correspond to distinct quantised hidden-state codes of the GRU;
each state is labelled with the action the policy emits from it, and the
transition table maps (state, quantised-observation) pairs to successor
states.  The machine is a standalone controller: it needs only the
observation QBN codes (or, for unseen observations, the nearest known
observation) to run — no neural network at decision time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ExtractionError
from repro.storage.migration import MigrationAction

StateKey = Tuple[int, ...]
ObservationKey = Tuple[int, ...]


@dataclass
class FSMState:
    """One extracted state.

    ``state_id`` is a small integer label (S0, S1, ... in the paper's
    Figure 5); ``code`` is the underlying quantised hidden-state vector;
    ``action`` is the single action associated with the state;
    ``visit_count`` is how many dataset transitions passed through it.
    """

    state_id: int
    code: StateKey
    action: MigrationAction
    visit_count: int = 0

    @property
    def label(self) -> str:
        return f"S{self.state_id}"

    @property
    def action_name(self) -> str:
        return self.action.short_name


@dataclass
class FiniteStateMachine:
    """Transition-table controller extracted from the recurrent policy."""

    states: Dict[StateKey, FSMState] = field(default_factory=dict)
    transitions: Dict[Tuple[StateKey, ObservationKey], StateKey] = field(default_factory=dict)
    transition_counts: Dict[Tuple[StateKey, StateKey], int] = field(default_factory=dict)
    observation_prototypes: Dict[ObservationKey, np.ndarray] = field(default_factory=dict)
    initial_state: Optional[StateKey] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_state(self, code: StateKey, action: MigrationAction) -> FSMState:
        if code not in self.states:
            self.states[code] = FSMState(
                state_id=len(self.states), code=code, action=action
            )
        return self.states[code]

    def add_transition(
        self,
        source: StateKey,
        observation: ObservationKey,
        destination: StateKey,
        observation_vector: Optional[np.ndarray] = None,
    ) -> None:
        if source not in self.states or destination not in self.states:
            raise ExtractionError("both endpoints of a transition must be existing states")
        self.transitions[(source, observation)] = destination
        pair = (source, destination)
        self.transition_counts[pair] = self.transition_counts.get(pair, 0) + 1
        if observation_vector is not None:
            self._update_prototype(observation, observation_vector)

    def _update_prototype(self, observation: ObservationKey, vector: np.ndarray) -> None:
        vector = np.asarray(vector, dtype=float)
        if observation in self.observation_prototypes:
            # Running mean keeps one representative vector per observation code.
            current = self.observation_prototypes[observation]
            self.observation_prototypes[observation] = 0.9 * current + 0.1 * vector
        else:
            self.observation_prototypes[observation] = vector

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def num_transitions(self) -> int:
        return len(self.transitions)

    def states_by_id(self) -> List[FSMState]:
        return sorted(self.states.values(), key=lambda s: s.state_id)

    def state_for_code(self, code: StateKey) -> FSMState:
        try:
            return self.states[code]
        except KeyError as exc:
            raise ExtractionError(f"unknown state code {code!r}") from exc

    def action_for(self, code: StateKey) -> MigrationAction:
        return self.state_for_code(code).action

    def successors(self, code: StateKey) -> Dict[StateKey, int]:
        """Successor states of ``code`` with transition counts."""
        result: Dict[StateKey, int] = {}
        for (source, destination), count in self.transition_counts.items():
            if source == code:
                result[destination] = result.get(destination, 0) + count
        return result

    def known_observations(self) -> List[ObservationKey]:
        return list(self.observation_prototypes.keys())

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(
        self, current: StateKey, observation: ObservationKey
    ) -> Tuple[StateKey, MigrationAction]:
        """Advance one step: returns (next state, action emitted by next state).

        If the (state, observation) pair was never seen, the machine
        stays in the current state (the generalisation layer in
        :mod:`repro.fsm.generalize` is responsible for mapping unseen
        observations to known ones before calling this).
        """
        if current not in self.states:
            raise ExtractionError(f"unknown current state {current!r}")
        next_state = self.transitions.get((current, observation), current)
        if next_state not in self.states:
            next_state = current
        return next_state, self.states[next_state].action

    def validate(self) -> None:
        """Internal-consistency checks (every transition endpoint exists, etc.)."""
        if self.initial_state is not None and self.initial_state not in self.states:
            raise ExtractionError("initial state is not a known state")
        for (source, _observation), destination in self.transitions.items():
            if source not in self.states or destination not in self.states:
                raise ExtractionError("transition references an unknown state")
        ids = [state.state_id for state in self.states.values()]
        if len(set(ids)) != len(ids):
            raise ExtractionError("duplicate state ids")

    def relabel(self) -> None:
        """Re-assign contiguous state ids ordered by decreasing visit count."""
        ordered = sorted(
            self.states.values(), key=lambda s: (-s.visit_count, s.state_id)
        )
        for new_id, state in enumerate(ordered):
            state.state_id = new_id
