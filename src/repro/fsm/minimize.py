"""FSM minimisation: merging equivalent states and pruning rare ones.

Raw extraction can produce more states than are meaningful (several
hidden-state codes that behave identically, or codes visited a handful
of times).  Two standard clean-ups are applied:

* **merge_equivalent_states** — Moore-style partition refinement: states
  that emit the same action and, for every observation code, transition
  into the same partition are merged into one representative.
* **prune_rare_states** — states visited fewer than ``min_visits`` times
  are removed; transitions into them are redirected to the most-visited
  surviving state with the same action (falling back to the most-visited
  state overall).

Both functions mutate the machine in place and return the mapping from
removed state codes to their surviving representative so callers can
remap any side data (e.g. interpretation records).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.errors import ExtractionError
from repro.fsm.machine import FiniteStateMachine, StateKey


def _apply_merges(fsm: FiniteStateMachine, mapping: Dict[StateKey, StateKey]) -> None:
    """Rewrite the machine so every state in ``mapping`` is replaced by its target."""

    def resolve(key: StateKey) -> StateKey:
        seen = set()
        while key in mapping and key not in seen:
            seen.add(key)
            key = mapping[key]
        return key

    # Merge visit counts into representatives, then drop merged states.
    for removed, target in list(mapping.items()):
        target = resolve(target)
        if removed in fsm.states and target in fsm.states and removed != target:
            fsm.states[target].visit_count += fsm.states[removed].visit_count
    for removed in mapping:
        fsm.states.pop(removed, None)

    new_transitions: Dict[Tuple[StateKey, Tuple[int, ...]], StateKey] = {}
    for (source, observation), destination in fsm.transitions.items():
        new_transitions[(resolve(source), observation)] = resolve(destination)
    fsm.transitions = new_transitions

    new_counts: Dict[Tuple[StateKey, StateKey], int] = defaultdict(int)
    for (source, destination), count in fsm.transition_counts.items():
        new_counts[(resolve(source), resolve(destination))] += count
    fsm.transition_counts = dict(new_counts)

    if fsm.initial_state is not None:
        fsm.initial_state = resolve(fsm.initial_state)


def merge_equivalent_states(fsm: FiniteStateMachine) -> Dict[StateKey, StateKey]:
    """Merge behaviourally equivalent states (same action, same successor partition)."""
    if fsm.num_states == 0:
        return {}

    # Initial partition: by emitted action.
    partition: Dict[StateKey, int] = {}
    blocks: Dict[int, List[StateKey]] = defaultdict(list)
    action_to_block: Dict[int, int] = {}
    for code, state in fsm.states.items():
        block = action_to_block.setdefault(int(state.action), len(action_to_block))
        partition[code] = block
        blocks[block].append(code)

    observations = sorted({observation for (_, observation) in fsm.transitions})

    # Refine until stable: two states stay together only if, for every
    # observation, their successors are in the same block.
    changed = True
    while changed:
        changed = False
        signature_to_block: Dict[Tuple, int] = {}
        new_partition: Dict[StateKey, int] = {}
        for code in fsm.states:
            signature = [partition[code]]
            for observation in observations:
                destination = fsm.transitions.get((code, observation), code)
                signature.append(partition.get(destination, -1))
            signature = tuple(signature)
            if signature not in signature_to_block:
                signature_to_block[signature] = len(signature_to_block)
            new_partition[code] = signature_to_block[signature]
        if len(set(new_partition.values())) != len(set(partition.values())):
            changed = True
        partition = new_partition

    # Pick the most-visited state of each block as its representative.
    block_members: Dict[int, List[StateKey]] = defaultdict(list)
    for code, block in partition.items():
        block_members[block].append(code)
    mapping: Dict[StateKey, StateKey] = {}
    for members in block_members.values():
        if len(members) <= 1:
            continue
        representative = max(members, key=lambda c: (fsm.states[c].visit_count, c))
        for member in members:
            if member != representative:
                mapping[member] = representative
    if mapping:
        _apply_merges(fsm, mapping)
    return mapping


def prune_rare_states(fsm: FiniteStateMachine, min_visits: int) -> Dict[StateKey, StateKey]:
    """Remove states visited fewer than ``min_visits`` times."""
    if min_visits <= 0 or fsm.num_states <= 1:
        return {}
    keep = {code for code, state in fsm.states.items() if state.visit_count >= min_visits}
    if fsm.initial_state is not None:
        keep.add(fsm.initial_state)
    if not keep:
        raise ExtractionError(
            f"pruning with min_visits={min_visits} would remove every state"
        )
    removed = [code for code in fsm.states if code not in keep]
    if not removed:
        return {}

    survivors = sorted(keep, key=lambda c: -fsm.states[c].visit_count)
    mapping: Dict[StateKey, StateKey] = {}
    for code in removed:
        action = fsm.states[code].action
        same_action = [s for s in survivors if fsm.states[s].action == action]
        mapping[code] = same_action[0] if same_action else survivors[0]
    _apply_merges(fsm, mapping)
    return mapping
