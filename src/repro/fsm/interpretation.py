"""Interpretation of extracted FSM states (paper Section 3.3, Figures 5-6).

Two complementary analyses give each state a human-readable meaning:

* **Fan-in / fan-out statistics** — for every state, average the
  continuous observations seen on transitions *into* the state and on
  transitions *out of* it (self-loops excluded).  The difference shows
  how the state's action changes the system (e.g. S1/S4 move cores from
  the low-utilisation level to the high-utilisation one).
* **History profiles** — for every entry into a state, collect the
  window of observations preceding it (the paper uses the last 10) and
  average them.  The resulting time series of read intensity, write
  intensity and NORMAL/(KV+RV) capacity ratio explains *what causes* the
  transition into the state (Figure 6).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ExtractionError
from repro.fsm.extraction import TransitionRecord
from repro.fsm.machine import FiniteStateMachine, StateKey
from repro.storage.iorequest import NUM_IO_TYPES
from repro.storage.migration import action_name

_SIZE_SLICE = slice(6, 6 + NUM_IO_TYPES)
_RATIO_SLICE = slice(6 + NUM_IO_TYPES, 6 + 2 * NUM_IO_TYPES)
_REQUESTS_INDEX = 6 + 2 * NUM_IO_TYPES


def read_intensity_kb(raw_observation: np.ndarray) -> float:
    """Kilobytes of read IO described by a raw observation vector."""
    raw_observation = np.asarray(raw_observation, dtype=float)
    sizes = raw_observation[_SIZE_SLICE]
    ratios = raw_observation[_RATIO_SLICE]
    requests = raw_observation[_REQUESTS_INDEX]
    reads = sizes > 0
    return float((np.abs(sizes) * ratios * reads).sum() * requests)


def write_intensity_kb(raw_observation: np.ndarray) -> float:
    """Kilobytes of write IO described by a raw observation vector."""
    raw_observation = np.asarray(raw_observation, dtype=float)
    sizes = raw_observation[_SIZE_SLICE]
    ratios = raw_observation[_RATIO_SLICE]
    requests = raw_observation[_REQUESTS_INDEX]
    writes = sizes < 0
    return float((np.abs(sizes) * ratios * writes).sum() * requests)


def capacity_ratio(raw_observation: np.ndarray) -> float:
    """NORMAL cores divided by KV+RV cores (the paper's "capacity ratio")."""
    raw_observation = np.asarray(raw_observation, dtype=float)
    normal, kv, rv = raw_observation[0], raw_observation[1], raw_observation[2]
    other = kv + rv
    if other <= 0:
        return float("inf")
    return float(normal / other)


def utilization_vector(raw_observation: np.ndarray) -> np.ndarray:
    """Per-level utilisation (NORMAL, KV, RV) from a raw observation vector."""
    return np.asarray(raw_observation, dtype=float)[3:6].copy()


@dataclass(frozen=True)
class FanInOutStats:
    """Average fan-in/fan-out observations of one state."""

    state_label: str
    action: str
    fan_in_count: int
    fan_out_count: int
    fan_in_mean: Optional[np.ndarray]
    fan_out_mean: Optional[np.ndarray]

    def utilization_shift(self) -> Optional[np.ndarray]:
        """Change in per-level utilisation from fan-in to fan-out."""
        if self.fan_in_mean is None or self.fan_out_mean is None:
            return None
        return utilization_vector(self.fan_out_mean) - utilization_vector(self.fan_in_mean)

    def capacity_ratio_shift(self) -> Optional[float]:
        if self.fan_in_mean is None or self.fan_out_mean is None:
            return None
        return capacity_ratio(self.fan_out_mean) - capacity_ratio(self.fan_in_mean)


@dataclass(frozen=True)
class StateHistoryProfile:
    """Averaged observation window preceding entries into one state (Figure 6)."""

    state_label: str
    action: str
    window: int
    num_entries: int
    mean_history: np.ndarray
    read_intensity: np.ndarray
    write_intensity: np.ndarray
    capacity_ratio_series: np.ndarray

    def write_trend(self) -> float:
        """Slope of the write-intensity series (positive = rising before entry)."""
        if self.write_intensity.size < 2:
            return 0.0
        x = np.arange(self.write_intensity.size)
        return float(np.polyfit(x, self.write_intensity, 1)[0])

    def capacity_ratio_trend(self) -> float:
        series = self.capacity_ratio_series
        finite = np.isfinite(series)
        if finite.sum() < 2:
            return 0.0
        x = np.arange(series.size)[finite]
        return float(np.polyfit(x, series[finite], 1)[0])


def fan_in_out_statistics(
    fsm: FiniteStateMachine, records: Sequence[TransitionRecord]
) -> Dict[str, FanInOutStats]:
    """Compute Figure-5 style fan-in/fan-out statistics for every state.

    As in the paper, observations on self-transitions (source == destination)
    are excluded, and the *original continuous* observations are used
    rather than their quantised codes.
    """
    if not records:
        raise ExtractionError("fan-in/fan-out analysis needs transition records")
    fan_in: Dict[StateKey, List[np.ndarray]] = defaultdict(list)
    fan_out: Dict[StateKey, List[np.ndarray]] = defaultdict(list)
    for record in records:
        if record.source_state == record.destination_state:
            continue
        if record.destination_state in fsm.states:
            fan_in[record.destination_state].append(record.raw_observation)
        if record.source_state in fsm.states:
            fan_out[record.source_state].append(record.raw_observation)

    stats: Dict[str, FanInOutStats] = {}
    for code, state in fsm.states.items():
        ins = fan_in.get(code, [])
        outs = fan_out.get(code, [])
        stats[state.label] = FanInOutStats(
            state_label=state.label,
            action=state.action_name,
            fan_in_count=len(ins),
            fan_out_count=len(outs),
            fan_in_mean=np.mean(ins, axis=0) if ins else None,
            fan_out_mean=np.mean(outs, axis=0) if outs else None,
        )
    return stats


def history_profile(
    fsm: FiniteStateMachine,
    records: Sequence[TransitionRecord],
    state_label: str,
    window: int = 10,
) -> StateHistoryProfile:
    """Compute the Figure-6 style history window for one state."""
    if window <= 0:
        raise ExtractionError(f"window must be positive, got {window}")
    label_to_code = {state.label: code for code, state in fsm.states.items()}
    if state_label not in label_to_code:
        raise ExtractionError(
            f"unknown state {state_label!r}; known states: {sorted(label_to_code)}"
        )
    target = label_to_code[state_label]

    # Index records per episode by step so windows never cross episodes.
    by_episode: Dict[int, Dict[int, TransitionRecord]] = defaultdict(dict)
    for record in records:
        by_episode[record.episode][record.step] = record

    windows: List[np.ndarray] = []
    for record in records:
        is_entry = (
            record.destination_state == target
            and record.source_state != record.destination_state
        )
        if not is_entry:
            continue
        episode_records = by_episode[record.episode]
        steps = [record.step - offset for offset in range(window, 0, -1)]
        if any(step not in episode_records for step in steps):
            continue
        windows.append(
            np.stack([episode_records[step].raw_observation for step in steps])
        )

    state = fsm.states[target]
    if not windows:
        empty = np.zeros((window, records[0].raw_observation.shape[0]))
        return StateHistoryProfile(
            state_label=state_label,
            action=state.action_name,
            window=window,
            num_entries=0,
            mean_history=empty,
            read_intensity=np.zeros(window),
            write_intensity=np.zeros(window),
            capacity_ratio_series=np.zeros(window),
        )

    mean_history = np.mean(np.stack(windows), axis=0)
    return StateHistoryProfile(
        state_label=state_label,
        action=state.action_name,
        window=window,
        num_entries=len(windows),
        mean_history=mean_history,
        read_intensity=np.array([read_intensity_kb(row) for row in mean_history]),
        write_intensity=np.array([write_intensity_kb(row) for row in mean_history]),
        capacity_ratio_series=np.array([capacity_ratio(row) for row in mean_history]),
    )


def interpret_fsm(
    fsm: FiniteStateMachine,
    records: Sequence[TransitionRecord],
    window: int = 10,
) -> Dict[str, Dict[str, object]]:
    """Full interpretation bundle: fan-in/out stats and history profile per state."""
    fan_stats = fan_in_out_statistics(fsm, records)
    result: Dict[str, Dict[str, object]] = {}
    for state in fsm.states_by_id():
        label = state.label
        profile = history_profile(fsm, records, label, window=window)
        result[label] = {
            "action": action_name(state.action),
            "visits": state.visit_count,
            "fan_in_out": fan_stats[label],
            "history": profile,
        }
    return result
