"""Figure-4-style comparison of all controllers on sampled real workloads.

Run with::

    python examples/compare_policies.py [--traces N] [--epochs E]

Trains the scaled-down pipeline, then evaluates the production default,
the handcrafted expert FSM, the greedy and proportional heuristics, the
GRU DRL policy and the extracted FSM on the held-out "real" traces with
matched simulator seeds, printing the per-trace makespan table and the
relative reductions.
"""

from __future__ import annotations

import argparse

from repro.agents import DefaultPolicy, GreedyUtilizationPolicy, HandcraftedFSMPolicy
from repro.agents.proportional import ProportionalAllocationPolicy
from repro.pipeline.evaluation import compare_agents, comparison_table, relative_reduction
from repro.pipeline.experiments import small_pipeline_config
from repro.pipeline.learning_aided import LearningAidedPipeline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--traces", type=int, default=16, help="number of real traces to sample")
    parser.add_argument("--epochs", type=int, default=20, help="A2C epochs per curriculum phase")
    args = parser.parse_args()

    config = small_pipeline_config(
        seed=0,
        standard_epochs=args.epochs,
        real_epochs=args.epochs,
        num_real_traces=args.traces,
        num_eval_traces=min(10, max(2, args.traces // 2)),
    )
    pipeline = LearningAidedPipeline(config)
    result = pipeline.run()

    env = pipeline.make_env()
    agents = [
        DefaultPolicy(),
        HandcraftedFSMPolicy(),
        GreedyUtilizationPolicy(),
        ProportionalAllocationPolicy(config.system),
        result.drl_agent(env),
        result.fsm_agent(env),
    ]
    results = compare_agents(
        agents, result.eval_traces, system_config=config.system, episode_seed=0
    )

    print(comparison_table(results))
    default = results["default"]
    print("\nRelative makespan reduction vs the default setting:")
    for name, evaluation in results.items():
        if name == "default":
            continue
        print(f"  {name:26s} {100 * relative_reduction(default, evaluation):6.1f}%")


if __name__ == "__main__":
    main()
