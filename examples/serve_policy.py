"""Train, extract, compile and serve a migration policy end to end.

Run with::

    python examples/serve_policy.py [--sessions 200] [--rounds 20]

Runs the scaled-down learning-aided pipeline, compiles the extracted
FSM into the dense serving artifact, then stands up a micro-batching
:class:`PolicyServer` on the compiled fast path with the GRU policy in
shadow mode and drives a synthetic request stream of concurrent
sessions through it — printing decision throughput, the backend
comparison and the serving-time fidelity counters at the end.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.pipeline.experiments import small_pipeline_config
from repro.pipeline.learning_aided import LearningAidedPipeline
from repro.serving import (
    CompiledFSMBackend,
    GRUPolicyBackend,
    PolicyServer,
    ShadowEvaluator,
)
from repro.storage.migration import MigrationAction


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=200,
                        help="concurrent serving sessions (default 200)")
    parser.add_argument("--rounds", type=int, default=20,
                        help="decision rounds to serve (default 20)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--artifact", type=str, default=None,
                        help="also save the compiled artifact to this path")
    args = parser.parse_args()

    print("1/3  training + extracting (scaled-down pipeline)...")
    config = small_pipeline_config(
        seed=args.seed, num_real_traces=12, num_eval_traces=6
    )
    pipeline = LearningAidedPipeline(config)
    result = pipeline.run()
    env = pipeline.make_env()

    print("2/3  compiling the FSM into the serving fast path...")
    compiled = result.compiled_fsm_policy(env)
    print(f"     {compiled.num_states} states x {compiled.num_observations} "
          f"observation codes ({compiled.num_prototypes} prototypes)")
    if args.artifact:
        compiled.save(args.artifact)
        print(f"     artifact saved to {args.artifact}")

    print(f"3/3  serving {args.sessions} concurrent sessions, "
          f"{args.rounds} rounds (GRU in shadow mode)...")
    shadow = ShadowEvaluator(
        CompiledFSMBackend(compiled), GRUPolicyBackend(result.policy)
    )
    server = PolicyServer(
        shadow, env.observation_encoder, initial_capacity=args.sessions
    )
    sessions = server.open_sessions(args.sessions)

    # Synthetic request stream: each session replays the pipeline's
    # transition-dataset observations from its own offset.
    pool = np.asarray(result.transition_dataset.raw_observations, dtype=float)
    offsets = np.arange(args.sessions) * 17
    start = time.perf_counter()
    for round_index in range(args.rounds):
        raw = pool[(offsets + round_index) % len(pool)]
        server.decide_now(sessions, raw)
    elapsed = time.perf_counter() - start

    stats = server.stats()
    print(f"\nserved {stats.decisions} decisions in {elapsed:.3f}s "
          f"({stats.decisions / elapsed:,.0f} decisions/s, "
          f"mean batch {stats.mean_batch_size:.0f})")
    named = {
        MigrationAction(i).short_name: int(count)
        for i, count in enumerate(stats.action_counts)
        if count
    }
    print(f"actions served: {named}")
    fidelity = shadow.summary()
    print(f"shadow fidelity vs GRU: {fidelity['fidelity']:.4f} "
          f"({fidelity['divergences']}/{fidelity['decisions']} divergences)")
    if fidelity["divergence_pairs"]:
        print(f"divergence pairs: {fidelity['divergence_pairs']}")


if __name__ == "__main__":
    main()
