"""Train, extract, compile and serve a migration policy end to end.

Run with::

    python examples/serve_policy.py [--sessions 200] [--rounds 20]

Runs the scaled-down learning-aided pipeline, compiles the extracted
FSM into the dense serving artifact, then stands up a micro-batching
:class:`PolicyServer` on the compiled fast path with the GRU policy in
shadow mode and drives a synthetic request stream of concurrent
sessions through it — printing decision throughput, the backend
comparison and the serving-time fidelity counters at the end.
"""

from __future__ import annotations

import argparse
import dataclasses
import time

import numpy as np

from repro.drl.policy import RecurrentPolicyValueNet
from repro.drl.rollout import BatchedRolloutCollector
from repro.engine import AgentBatchBackend, EvaluationEngine
from repro.env.vector_env import VectorStorageAllocationEnv
from repro.pipeline.experiments import small_pipeline_config
from repro.pipeline.learning_aided import LearningAidedPipeline
from repro.serving import (
    CompiledFSMBackend,
    GRUPolicyBackend,
    PolicyServer,
    ShadowEvaluator,
)
from repro.storage.migration import MigrationAction


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=200,
                        help="concurrent serving sessions (default 200)")
    parser.add_argument("--rounds", type=int, default=20,
                        help="decision rounds to serve (default 20)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--artifact", type=str, default=None,
                        help="also save the compiled artifact to this path")
    parser.add_argument(
        "--kernel", choices=("numpy", "native"), default="numpy",
        help="GRU inference kernel for the shadow backend and the "
             "rollout demo (native = fused C micro-kernel; falls back "
             "to numpy without a compiler)",
    )
    parser.add_argument(
        "--rng-family", choices=("legacy", "philox"), default="legacy",
        help="rng stream family for the rollout-through-the-backend "
             "demo (philox = counter-based, vectorized across the batch)",
    )
    parser.add_argument(
        "--engine-backend", choices=("interpreted", "compiled", "gru"),
        default=None,
        help="also run a closed-loop evaluation of the policy on the "
             "held-out traces through the unified inference engine with "
             "this backend (the exact decision backend mounted in the "
             "server above, driven in simulator lockstep)",
    )
    args = parser.parse_args()

    print("1/4  training + extracting (scaled-down pipeline)...")
    config = small_pipeline_config(
        seed=args.seed, num_real_traces=12, num_eval_traces=6
    )
    pipeline = LearningAidedPipeline(config)
    result = pipeline.run()
    env = pipeline.make_env()

    print("2/4  compiling the FSM into the serving fast path...")
    compiled = result.compiled_fsm_policy(env)
    print(f"     {compiled.num_states} states x {compiled.num_observations} "
          f"observation codes ({compiled.num_prototypes} prototypes)")
    if args.artifact:
        compiled.save(args.artifact)
        print(f"     artifact saved to {args.artifact}")

    serving_policy = result.policy
    if args.kernel != serving_policy.config.kernel:
        serving_policy = RecurrentPolicyValueNet(
            dataclasses.replace(serving_policy.config, kernel=args.kernel)
        )
        serving_policy.load_state_dict(result.policy.state_dict())
    gru_backend = GRUPolicyBackend(serving_policy)

    print(f"3/4  serving {args.sessions} concurrent sessions, "
          f"{args.rounds} rounds (GRU in shadow mode, "
          f"kernel={args.kernel})...")
    shadow = ShadowEvaluator(CompiledFSMBackend(compiled), gru_backend)
    server = PolicyServer(
        shadow, env.observation_encoder, initial_capacity=args.sessions
    )
    sessions = server.open_sessions(args.sessions)

    # Synthetic request stream: each session replays the pipeline's
    # transition-dataset observations from its own offset.
    pool = np.asarray(result.transition_dataset.raw_observations, dtype=float)
    offsets = np.arange(args.sessions) * 17
    start = time.perf_counter()
    for round_index in range(args.rounds):
        raw = pool[(offsets + round_index) % len(pool)]
        server.decide_now(sessions, raw)
    elapsed = time.perf_counter() - start

    stats = server.stats()
    print(f"\nserved {stats.decisions} decisions in {elapsed:.3f}s "
          f"({stats.decisions / elapsed:,.0f} decisions/s, "
          f"mean batch {stats.mean_batch_size:.0f})")
    named = {
        MigrationAction(i).short_name: int(count)
        for i, count in enumerate(stats.action_counts)
        if count
    }
    print(f"actions served: {named}")
    fidelity = shadow.summary()
    print(f"shadow fidelity vs GRU: {fidelity['fidelity']:.4f} "
          f"({fidelity['divergences']}/{fidelity['decisions']} divergences)")
    if fidelity["divergence_pairs"]:
        print(f"divergence pairs: {fidelity['divergence_pairs']}")

    # The serving backend doubles as the rollout inference engine: the
    # batched collector drives the exact same GRUPolicyBackend it would
    # serve with, so rollout collection and online serving share one
    # code path (and one kernel).
    print(f"\n4/4  batched rollout through the serving backend "
          f"(kernel={args.kernel}, rng_family={args.rng_family})...")
    collector = BatchedRolloutCollector(
        VectorStorageAllocationEnv(config.system, config.reward)
    )
    start = time.perf_counter()
    trajectories = collector.collect_many(
        gru_backend,
        result.eval_traces,
        base_seed=args.seed,
        rng_family=args.rng_family,
    )
    elapsed = time.perf_counter() - start
    steps = sum(len(t) for t in trajectories)
    print(f"collected {len(trajectories)} episodes, {steps} steps in "
          f"{elapsed:.3f}s ({steps / elapsed:,.0f} steps/s)")

    if args.engine_backend:
        # Same DecisionBackend objects the server mounts, now driven in
        # simulator lockstep by the evaluation engine: one decision
        # contract across serving, rollouts and evaluation.
        engine = EvaluationEngine(config.system, config.reward)
        if args.engine_backend == "gru":
            backend, label = gru_backend, "gru_drl"
        elif args.engine_backend == "compiled":
            backend, label = CompiledFSMBackend(compiled), "extracted_fsm[compiled]"
        else:
            backend = AgentBatchBackend.from_agent(
                result.fsm_agent(env), engine.encoder
            )
            label = "extracted_fsm[interpreted]"
        print(f"\n+    closed-loop engine evaluation "
              f"[{label}] over {len(result.eval_traces)} held-out traces...")
        start = time.perf_counter()
        evaluation = engine.evaluate(
            backend, result.eval_traces, episode_seed=args.seed, agent_name=label
        )
        elapsed = time.perf_counter() - start
        decisions = sum(evaluation.makespans)
        print(f"mean makespan {evaluation.mean_makespan():.2f} over "
              f"{len(evaluation.makespans)} traces ({decisions} decisions in "
              f"{elapsed:.3f}s, {decisions / elapsed:,.0f} decisions/s)")


if __name__ == "__main__":
    main()
