"""Collect policy rollouts with multi-process sharding and verify determinism.

Run with::

    PYTHONPATH=src python examples/parallel_rollout.py --workers 2 --episodes 8

Collects the same seeded episode set twice — once in a single lockstep
batch, once sharded across worker processes — verifies the trajectories
are bit-identical, and prints per-path wall-clock times.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.drl.parallel import ParallelRolloutCollector
from repro.drl.policy import PolicyConfig, RecurrentPolicyValueNet
from repro.drl.rollout import BatchedRolloutCollector, derive_episode_streams
from repro.env.vector_env import VectorStorageAllocationEnv
from repro.storage.simulator import StorageSystemConfig
from repro.workloads.generator import StandardWorkloadGenerator
from repro.workloads.sampler import RealTraceSampler


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--episodes", type=int, default=8)
    parser.add_argument("--duration", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--persistent", action="store_true",
        help="back the sharded collection with a persistent worker pool "
             "(resident simulator state + weight-delta broadcasts)",
    )
    parser.add_argument(
        "--epochs", type=int, default=1,
        help="number of collection epochs (persistent pools amortise "
             "their spawn cost across epochs)",
    )
    parser.add_argument(
        "--kernel", choices=("numpy", "native"), default="numpy",
        help="GRU inference kernel (native = fused C micro-kernel, "
             "compiled on first use; falls back to numpy without a "
             "compiler)",
    )
    parser.add_argument(
        "--rng-family", choices=("legacy", "philox"), default="legacy",
        help="episode rng stream family (philox = counter-based, "
             "vectorized across the batch; a different stream family, "
             "but still bit-identical across collection modes)",
    )
    args = parser.parse_args()

    system = StorageSystemConfig()
    generator = StandardWorkloadGenerator(system, rng=args.seed)
    standard = generator.generate_suite(duration=args.duration, rng=args.seed + 1)
    sampler = RealTraceSampler(standard, rng=args.seed + 2)
    traces = sampler.sample_many(args.episodes, rng=args.seed + 3)
    policy = RecurrentPolicyValueNet(
        PolicyConfig(hidden_size=32, kernel=args.kernel), rng=args.seed
    )
    base_seed = 1234

    start = time.perf_counter()
    episode_rngs, action_rngs = derive_episode_streams(
        base_seed, len(traces), args.rng_family
    )
    batched = BatchedRolloutCollector(VectorStorageAllocationEnv(system)).collect_batch(
        policy, traces, episode_rngs=episode_rngs, action_rngs=action_rngs
    )
    batched_s = time.perf_counter() - start

    start = time.perf_counter()
    with ParallelRolloutCollector(
        system, num_workers=args.workers, persistent=args.persistent
    ) as collector:
        for _ in range(max(0, args.epochs - 1)):
            collector.collect(
                policy, traces, base_seed=base_seed, rng_family=args.rng_family
            )
        parallel = collector.collect(
            policy, traces, base_seed=base_seed, rng_family=args.rng_family
        )
    parallel_s = (time.perf_counter() - start) / max(1, args.epochs)

    for reference, sharded in zip(batched, parallel):
        assert reference.trace_name == sharded.trace_name
        assert reference.makespan == sharded.makespan
        np.testing.assert_array_equal(reference.observations(), sharded.observations())
        np.testing.assert_array_equal(reference.actions(), sharded.actions())
        np.testing.assert_array_equal(reference.rewards(), sharded.rewards())

    steps = sum(len(t) for t in batched)
    print(f"{len(traces)} episodes, {steps} environment steps "
          f"(kernel={args.kernel}, rng_family={args.rng_family})")
    print(f"lockstep batch (1 process):   {batched_s:.2f}s "
          f"({steps / batched_s:.0f} steps/s)")
    mode = "persistent pool" if args.persistent else "fork per epoch"
    print(f"sharded ({args.workers} workers, {mode}): {parallel_s:.2f}s/epoch "
          f"({steps / parallel_s:.0f} steps/s)")
    print("trajectories bit-identical: True")


if __name__ == "__main__":
    main()
