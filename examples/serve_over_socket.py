"""Serve policy decisions over the network front door, with one hot-swap.

Run with::

    python examples/serve_over_socket.py [--sessions 200] [--rounds 8] \
        [--clients 4] [--latency-json out.json] \
        [--metrics-prom out.prom] [--trace-jsonl trace.jsonl]

With ``--metrics-prom`` the run also scrapes the server's ``metrics``
op twice mid-load (before and after the hot-swap) and fails unless the
key serving series are present and monotone between the scrapes —
a closed-loop check that live telemetry actually moves under load.

Stands up the asyncio :class:`PolicyNetServer` on a unix socket with a
versioned :class:`ArtifactRegistry` (``v1`` = compiled FSM with the GRU
in shadow, ``v2`` = the GRU itself), drives a few hundred concurrent
sessions through real framed :class:`PolicyClient` connections, performs
one blue/green hot-swap mid-stream, then drains gracefully and prints —
and optionally writes — the per-request latency histogram.

The artifacts are built directly (a handmade FSM over the storage
observation space plus an untrained GRU) so the demo starts in seconds;
see ``examples/serve_policy.py`` for the full train-extract-compile
pipeline feeding the same serving stack.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import tempfile
import time

import numpy as np

from repro import telemetry
from repro.drl.policy import PolicyConfig, RecurrentPolicyValueNet
from repro.env.environment import StorageAllocationEnv
from repro.env.reward import RewardConfig
from repro.fsm.machine import FiniteStateMachine
from repro.qbn.autoencoder import build_observation_qbn
from repro.qbn.quantize import code_key
from repro.serving import (
    ArtifactRegistry,
    CompiledFSMBackend,
    CompiledFSMPolicy,
    GRUPolicyBackend,
    PolicyClient,
    PolicyNetServer,
    PolicyServer,
    ShadowEvaluator,
)
from repro.storage.migration import NUM_ACTIONS, MigrationAction
from repro.storage.simulator import StorageSystemConfig
from repro.utils.serialization import save_json
from repro.workloads.generator import GeneratorConfig, StandardWorkloadGenerator


def _series_total(snapshot: dict, name: str) -> float:
    """Sum of every labeled series of one metric in a JSON snapshot."""
    family = snapshot.get(name)
    if family is None:
        return 0.0
    values = []
    for series in family["series"]:
        value = series["value"]
        # Histograms snapshot as a state dict; use the recording count.
        values.append(value["total"] if isinstance(value, dict) else value)
    return float(sum(values))


def build_artifacts(seed: int):
    """A small compiled FSM + GRU over the real observation space."""
    env = StorageAllocationEnv(
        StorageSystemConfig(),
        reward_config=RewardConfig(mode="per_step_penalty"),
        rng=seed,
    )
    generator = StandardWorkloadGenerator(
        env.system_config, GeneratorConfig(), rng=seed
    )
    trace = generator.generate("web_server", duration=24)
    rng = np.random.default_rng(seed + 9)
    observation = env.reset(trace)
    rows = []
    while True:
        rows.append(observation.raw())
        result = env.step(MigrationAction(int(rng.integers(NUM_ACTIONS))))
        observation = result.observation
        if result.done:
            break
    stream = np.array(rows)

    rng = np.random.default_rng(seed + 3)
    qbn = build_observation_qbn(stream.shape[1], latent_dim=6, hidden_dim=16, rng=seed + 4)
    fsm = FiniteStateMachine()
    codes = []
    while len(codes) < 4:
        code = tuple(int(c) for c in rng.integers(0, 3, size=5))
        if code not in fsm.states:
            state = fsm.add_state(code, MigrationAction(int(rng.integers(NUM_ACTIONS))))
            state.visit_count = int(rng.integers(20))
            codes.append(code)
    normalized = env.observation_encoder.normalize_batch(stream)
    for vector in normalized[:5]:
        key = code_key(qbn.discrete_code(vector))
        if key not in fsm.observation_prototypes:
            fsm.observation_prototypes[key] = np.asarray(vector, float)
    observation_keys = list(fsm.observation_prototypes)
    for _ in range(20):
        fsm.add_transition(
            codes[int(rng.integers(len(codes)))],
            observation_keys[int(rng.integers(len(observation_keys)))],
            codes[int(rng.integers(len(codes)))],
        )
    fsm.initial_state = codes[1]
    fsm.validate()
    compiled = CompiledFSMPolicy.compile(fsm, qbn, encoder=env.observation_encoder)
    policy = RecurrentPolicyValueNet(PolicyConfig(hidden_size=16), rng=seed + 5)
    return env, compiled, policy, stream


async def drive(args) -> None:
    env, compiled, policy, stream = build_artifacts(args.seed)

    registry = ArtifactRegistry()
    shadowed = ShadowEvaluator(CompiledFSMBackend(compiled), GRUPolicyBackend(policy))
    registry.register_backend("v1", shadowed, kind="shadowed_compiled_fsm")
    registry.register_backend("v2", GRUPolicyBackend(policy), kind="gru")
    server = PolicyServer(
        shadowed,
        env.observation_encoder,
        initial_capacity=args.sessions,
        max_batch_size=256,
    )
    netserver = PolicyNetServer(
        server, registry=registry, active_version="v1", flush_interval=0.001
    )

    socket_dir = tempfile.mkdtemp(prefix="repro-net", dir="/tmp")
    socket_path = os.path.join(socket_dir, "policy.sock")
    endpoints = await netserver.start(unix_path=socket_path)
    print(f"serving on {endpoints['unix']}  "
          f"(v1 = compiled FSM + GRU shadow, v2 = GRU)")

    clients = [await PolicyClient.connect_unix(socket_path)
               for _ in range(args.clients)]
    per_client = args.sessions // args.clients
    handles = [await client.open(per_client) for client in clients]
    total_sessions = per_client * args.clients
    print(f"opened {total_sessions} sessions over {args.clients} connections")

    swap_round = args.rounds // 2
    start = time.perf_counter()
    first_scrape = None
    for round_index in range(args.rounds):
        if round_index == swap_round:
            # Mid-load scrape #1: under live traffic, before the swap.
            first_scrape = await clients[0].metrics()
            entry = await clients[0].swap("v2", reason="example_blue_green")
            print(f"round {round_index}: hot-swapped "
                  f"{entry['from_backend']} -> {entry['to_backend']} "
                  f"(state {entry['state']}, "
                  f"flushed {entry['flushed_pending']} pending)")
        await asyncio.gather(*[
            client.decide(
                handle,
                stream[(c * per_client + s + round_index * 13) % len(stream)],
            )
            for c, client in enumerate(clients)
            for s, handle in enumerate(handles[c])
        ])
    elapsed = time.perf_counter() - start

    # Mid-load scrape #2: after the swapped backend served traffic.
    second_scrape = await clients[0].metrics()
    stats = await clients[0].stats()
    audit = await clients[0].audit()
    for client in clients:
        await client.close()
    summary = await netserver.drain()

    # Telemetry liveness: the key serving series must be present and
    # monotone between the two in-flight scrapes.
    for metric in ("serving_decisions_total", "serving_batches_total",
                   "netserver_requests_total", "serving_batch_size"):
        if first_scrape is not None and _series_total(first_scrape["json"], metric) <= 0:
            raise SystemExit(f"first metrics scrape is missing {metric}")
        if _series_total(second_scrape["json"], metric) <= 0:
            raise SystemExit(f"second metrics scrape is missing {metric}")
    if first_scrape is not None:
        before = _series_total(first_scrape["json"], "serving_decisions_total")
        after = _series_total(second_scrape["json"], "serving_decisions_total")
        if after <= before:
            raise SystemExit(
                f"serving_decisions_total did not advance between scrapes "
                f"({before} -> {after})"
            )
        print(f"metrics scrape: serving_decisions_total {before:.0f} -> {after:.0f}, "
              f"swaps {_series_total(second_scrape['json'], 'serving_swaps_total'):.0f}, "
              f"flush_loop_errors {second_scrape['flush_loop_errors']}")
    if not second_scrape["prometheus"].startswith("# HELP"):
        raise SystemExit("prometheus exposition looks malformed")

    decisions = stats["decisions"]
    latency = stats["latency"]
    print(f"\nserved {decisions} decisions over the socket in {elapsed:.3f}s "
          f"({decisions / elapsed:,.0f} decisions/s)")
    print(f"request latency: p50 {latency['p50_ms']:.3f}ms  "
          f"p95 {latency['p95_ms']:.3f}ms  p99 {latency['p99_ms']:.3f}ms")
    print(f"audit trail: {[entry['event'] for entry in audit]}")
    print(f"drained cleanly: parked {summary['parked_replies']}, "
          f"pending {summary['pending']}, failed {summary['failed']}")
    if summary["parked_replies"] or summary["pending"]:
        raise SystemExit("drain left unresolved work")

    if args.latency_json:
        payload = {
            "example": "serve_over_socket",
            "sessions": total_sessions,
            "rounds": args.rounds,
            "clients": args.clients,
            "decisions": decisions,
            "decisions_per_second": decisions / elapsed,
            "swap_audit": audit,
            "latency": latency,
            "drain": summary,
        }
        save_json(args.latency_json, payload)
        print(f"latency histogram written to {args.latency_json}")

    if args.metrics_prom:
        with open(args.metrics_prom, "w", encoding="utf-8") as handle:
            handle.write(second_scrape["prometheus"])
        print(f"prometheus exposition written to {args.metrics_prom}")
    if args.trace_jsonl:
        spans = telemetry.tracer().export_jsonl(args.trace_jsonl)
        print(f"{spans} spans written to {args.trace_jsonl}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=200,
                        help="concurrent sessions (default 200)")
    parser.add_argument("--rounds", type=int, default=8,
                        help="decision rounds per session (default 8)")
    parser.add_argument("--clients", type=int, default=4,
                        help="client connections to spread sessions over")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--latency-json", type=str, default=None,
                        help="write the latency histogram summary to this path")
    parser.add_argument("--metrics-prom", type=str, default=None,
                        help="write the final Prometheus exposition to this path")
    parser.add_argument("--trace-jsonl", type=str, default=None,
                        help="write the span ring buffer as JSONL to this path")
    args = parser.parse_args()
    if args.clients < 1 or args.sessions < args.clients:
        raise SystemExit("need at least one session per client")
    asyncio.run(drive(args))


if __name__ == "__main__":
    main()
