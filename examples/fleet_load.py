"""Fleet-scale sim-to-serve load run against the policy server.

Run with::

    python examples/fleet_load.py [--sessions 2048] [--shard-size 512] \
        [--mode inprocess|socket] [--clients 4] [--seed 42] \
        [--json report.json] [--verify-determinism] \
        [--metrics-out fleet.prom] [--trace-out fleet_trace.jsonl]

Thousands of simulated storage nodes (B-major vector simulator shards)
hold ``(slot, generation)`` sessions on one micro-batching
:class:`PolicyServer` and submit a decision request per simulated
interval, through a three-phase schedule: steady warmup, a churn storm
with deliberate stale-handle probes, and a correlated flash crowd.
``--mode socket`` drives the identical schedule through the asyncio
:class:`PolicyNetServer` over real framed connections — the report's
deterministic section is byte-identical either way.

``--verify-determinism`` runs the fleet twice on fresh servers and
exits non-zero unless the two deterministic sections match byte for
byte.  The exit code is non-zero too if any request errored, was
BUSY-rejected, or was left pending — so CI can use this example as a
closed-loop serving smoke.

The artifacts are built directly (a handmade FSM over the storage
observation space) so the demo starts in seconds; see
``examples/serve_policy.py`` for the full train-extract-compile
pipeline feeding the same serving stack.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import shutil
import sys
import tempfile

from serve_over_socket import build_artifacts

from repro import telemetry
from repro.loadgen import (
    FleetDriver,
    FleetSchedule,
    InProcessTransport,
    LoadPhase,
    SocketTransport,
)
from repro.serving import (
    CompiledFSMBackend,
    PolicyClient,
    PolicyNetServer,
    PolicyServer,
)


def demo_schedule(sessions: int, shard_size: int) -> FleetSchedule:
    return FleetSchedule(
        sessions=sessions,
        shard_size=shard_size,
        trace_duration=10,
        trace_variants=2,
        phases=[
            LoadPhase(name="warmup", steps=2),
            LoadPhase(
                name="churn_storm",
                steps=3,
                churn_rate=0.05,
                stale_probes_per_step=4,
            ),
            LoadPhase(
                name="flash_crowd",
                steps=3,
                churn_rate=0.01,
                burst_multiplier=3,
                burst_tenant_fraction=0.25,
            ),
        ],
    )


def make_server(args) -> PolicyServer:
    env, compiled, _policy, _stream = build_artifacts(args.seed)
    return PolicyServer(
        CompiledFSMBackend(compiled),
        env.observation_encoder,
        initial_capacity=args.sessions,
        max_batch_size=2048,
    )


def run_inprocess(args):
    server = make_server(args)
    schedule = demo_schedule(args.sessions, args.shard_size)
    driver = FleetDriver(schedule, InProcessTransport(server), base_seed=args.seed)
    return driver.run()


def run_socket(args):
    async def scenario():
        server = make_server(args)
        netserver = PolicyNetServer(server, flush_interval=0.001, max_inflight=64)
        socket_dir = tempfile.mkdtemp(prefix="rfleet", dir="/tmp")
        socket_path = os.path.join(socket_dir, "fleet.sock")
        try:
            await netserver.start(unix_path=socket_path)
            clients = [
                await PolicyClient.connect_unix(socket_path)
                for _ in range(args.clients)
            ]
            schedule = demo_schedule(args.sessions, args.shard_size)
            driver = FleetDriver(
                schedule,
                SocketTransport(clients, per_connection_window=32),
                base_seed=args.seed,
            )
            report = await driver.run_async()
            for client in clients:
                await client.close()
            summary = await netserver.drain()
            if summary["pending"] or summary["parked_replies"]:
                raise SystemExit(
                    f"drain left work behind: {summary['pending']} pending, "
                    f"{summary['parked_replies']} parked"
                )
            return report
        finally:
            shutil.rmtree(socket_dir, ignore_errors=True)

    return asyncio.run(scenario())


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--sessions", type=int, default=2048)
    parser.add_argument("--shard-size", type=int, default=512)
    parser.add_argument("--mode", choices=("inprocess", "socket"), default="inprocess")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--json", type=str, default=None)
    parser.add_argument("--verify-determinism", action="store_true")
    parser.add_argument(
        "--metrics-out", type=str, default=None,
        help="write the merged telemetry registry as Prometheus text",
    )
    parser.add_argument(
        "--trace-out", type=str, default=None,
        help="write the span ring buffer as JSONL (one span per line)",
    )
    args = parser.parse_args()

    runner = run_inprocess if args.mode == "inprocess" else run_socket
    report = runner(args)
    payload = report.as_dict()
    det = payload["deterministic"]
    timing = payload["timing"]
    print(
        f"{args.mode}: {det['decisions_total']} decisions "
        f"(+{det['probe_decisions_total']} flash-crowd probes) over "
        f"{len(det['occupancy_timeline'])} steps at "
        f"{timing['decisions_per_sec']} decisions/s"
    )
    print(
        f"  churn cycles: {det['churn_cycles_total']}  "
        f"stale rejections: {det['stale_rejections_total']}  "
        f"recycles: {det['recycles']}  digest: {det['digest'][:16]}…"
    )
    latency = timing["latency"]
    print(
        f"  latency ms: p50={latency['p50_ms']} p95={latency['p95_ms']} "
        f"p99={latency['p99_ms']} max={latency['max_ms']}"
    )

    errors = sum(int(p["errors"]) for p in det["phases"])
    busy = int(payload["server"].get("busy_rejections", 0))
    if errors or busy:
        print(f"FAILED: {errors} errors, {busy} BUSY rejections", file=sys.stderr)
        return 1

    if args.verify_determinism:
        repeat = runner(args)
        if repeat.deterministic_json() != report.deterministic_json():
            print("FAILED: deterministic sections differ between runs",
                  file=sys.stderr)
            return 1
        print("  determinism verified: repeat run is byte-identical")

    if args.json:
        report.save(args.json)
        print(f"  report written to {args.json}")

    if args.metrics_out:
        # One exposition covering both the process-global registry (the
        # broker/netserver/engine series) and the report's own timing
        # instruments, merged.
        merged = telemetry.registry().snapshot()
        merged.merge(report.metrics_snapshot())
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(merged.to_prometheus_text())
        print(f"  metrics written to {args.metrics_out}")
    if args.trace_out:
        spans = telemetry.tracer().export_jsonl(args.trace_out)
        print(f"  {spans} spans written to {args.trace_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
