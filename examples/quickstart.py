"""Quickstart: simulate the storage array and compare two controllers.

Run with::

    python examples/quickstart.py

It builds the simulated Dorado-V6-style array, synthesises one "real"
workload trace, and compares the production default (no migration) with
the experts' handcrafted FSM, printing the makespans and the handcrafted
controller's action histogram.
"""

from __future__ import annotations

from repro.agents import DefaultPolicy, HandcraftedFSMPolicy
from repro.pipeline.evaluation import compare_agents, comparison_table
from repro.storage import StorageSystemConfig
from repro.workloads import RealTraceSampler, StandardWorkloadGenerator


def main() -> None:
    system = StorageSystemConfig()
    generator = StandardWorkloadGenerator(system, rng=0)
    standard_suite = generator.generate_suite(duration=48, rng=1)
    sampler = RealTraceSampler(standard_suite, rng=2)
    traces = sampler.sample_many(3, rng=3)

    print(f"Simulated array: {system.total_cores} cores "
          f"({system.initial_allocation}), capability {system.core_capability_kb:.0f} KB/core/interval")
    for trace in traces:
        print(f"  trace {trace.name}: {len(trace)} intervals, "
              f"{trace.total_kb() / 1e6:.1f} GB of IO, "
              f"{100 * trace.mean_write_fraction():.0f}% writes")

    results = compare_agents(
        [DefaultPolicy(), HandcraftedFSMPolicy()], traces, system_config=system, episode_seed=0
    )
    print()
    print(comparison_table(results))

    handcrafted = results["handcrafted_fsm"]
    print("\nHandcrafted FSM action histogram on the first trace:")
    print(" ", handcrafted.episodes[0].action_histogram())


if __name__ == "__main__":
    main()
