"""End-to-end pipeline example: train the DRL agent, extract and interpret the FSM.

Run with::

    python examples/train_and_extract_fsm.py            # scaled-down, a few minutes
    python examples/train_and_extract_fsm.py --paper    # paper-scale settings (hours)

The scaled-down configuration uses the documented sample-efficiency
deviations (behaviour-cloning warm start + shaped reward); ``--paper``
switches to the paper's settings (GRU-128, 1000+1000 pure-A2C epochs on
the inverse-makespan reward, QBN latent 64).
"""

from __future__ import annotations

import argparse

from repro.drl.a2c import A2CConfig
from repro.drl.curriculum import CurriculumConfig
from repro.drl.policy import PolicyConfig
from repro.env.reward import RewardConfig
from repro.fsm.render import fsm_summary_table, fsm_to_dot
from repro.pipeline.experiments import small_pipeline_config
from repro.pipeline.learning_aided import LearningAidedPipeline
from repro.qbn.trainer import QBNTrainingConfig


def build_config(paper_scale: bool):
    if not paper_scale:
        return small_pipeline_config(seed=0, num_real_traces=16, num_eval_traces=8)
    config = small_pipeline_config(seed=0, num_real_traces=50, num_eval_traces=10)
    config.policy = PolicyConfig(hidden_size=128)
    config.reward = RewardConfig(mode="inverse_makespan")
    config.a2c = A2CConfig(learning_rate=3e-4, grad_clip_norm=2.0, epsilon=0.1)
    config.curriculum = CurriculumConfig(standard_epochs=1000, real_epochs=1000)
    config.qbn = QBNTrainingConfig(
        epochs=100, observation_latent_dim=64, hidden_latent_dim=64
    )
    config.bc_pretrain_epochs = 0
    return config


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper", action="store_true", help="use paper-scale settings")
    args = parser.parse_args()

    config = build_config(args.paper)
    pipeline = LearningAidedPipeline(config)
    print("Running the learning-aided heuristics design pipeline "
          f"({'paper' if args.paper else 'scaled-down'} settings)...")
    result = pipeline.run()

    history = result.training_history
    print(f"\nTraining finished: {len(history)} epochs, "
          f"final smoothed makespan {history.final_makespan():.1f}")
    print(f"QBN fidelity: {result.qbn_result.as_summary()}")

    fsm = result.extraction.fsm
    print(f"\nExtracted FSM with {fsm.num_states} states "
          f"(from {result.extraction.num_raw_states} raw quantised states):")
    print(fsm_summary_table(fsm, result.extraction.records))

    print("\nGraphviz DOT (paste into any DOT renderer):")
    print(fsm_to_dot(fsm))

    print("\nPer-state interpretation:")
    for label, info in result.interpretation.items():
        profile = info["history"]
        print(f"  {label} [{info['action']}, visits={info['visits']}]: "
              f"write trend {profile.write_trend():+.0f} KB/interval, "
              f"capacity-ratio trend {profile.capacity_ratio_trend():+.4f}/interval "
              f"over the {profile.window} intervals before entry")


if __name__ == "__main__":
    main()
