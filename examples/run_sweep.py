"""Run a sharded experiment sweep from the command line.

Run with::

    PYTHONPATH=src python examples/run_sweep.py --workers 2 --output /tmp/sweep

By default this runs a small demo sweep: the three no-training baseline
controllers compared over generated workloads, gridded over the target
load and two seeds (4 jobs).  Pass ``--spec path.json`` to run your own
sweep; the JSON file holds a :class:`repro.pipeline.sweep.SweepSpec`
(name/kind/base/grid/seeds — see README "Sweep runner").

Per-job JSON results are deterministic: rerunning the same spec (with
any ``--workers`` value) writes byte-identical files under
``<output>/jobs/``.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.pipeline.sweep import SweepRunner, SweepSpec
from repro.utils.serialization import load_json


def demo_spec() -> SweepSpec:
    return SweepSpec(
        name="baseline-demo",
        kind="agents",
        base={"num_traces": 3, "duration": 24},
        grid={"target_load": [0.9, 1.1]},
        seeds=[0, 1],
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--spec", type=Path, default=None,
                        help="JSON SweepSpec file (default: built-in demo sweep)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes (1 = in-process)")
    parser.add_argument("--output", type=Path, default=None,
                        help="directory for per-job JSON + summary (default: none)")
    parser.add_argument("--resume", action="store_true",
                        help="skip jobs whose digest-verified JSON already "
                             "exists in --output (requires --output)")
    args = parser.parse_args()

    spec = SweepSpec.from_dict(load_json(args.spec)) if args.spec else demo_spec()

    def progress(done: int, total: int, record: dict) -> None:
        print(f"[{done}/{total}] {record['name']}: {record['status']}")

    runner = SweepRunner(
        spec, output_dir=args.output, num_workers=args.workers, progress=progress,
        resume=args.resume,
    )
    result = runner.run()
    print()
    print(result.table())
    print(f"\n{result.num_jobs} jobs, {len(result.failures)} failed, "
          f"{result.num_resumed} resumed, {result.wall_time_s:.1f}s wall")
    if args.output:
        print(f"results written to {args.output}")
    if result.failures:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
