"""Figure-5/6-style interpretation of an extracted FSM.

Run with::

    python examples/interpret_fsm.py [--compile-out artifact.npz]

Runs the scaled-down pipeline and then performs the paper's two
interpretation analyses on the extracted machine: fan-in/fan-out
observation statistics per state (Figure 5) and the averaged
observation-history window preceding entries into the most interesting
non-Noop state (Figure 6).  ``--compile-out`` additionally compiles the
machine into the dense serving artifact (see ``repro.serving``), closing
the train -> extract -> serve loop from this CLI.
"""

from __future__ import annotations

import argparse
import time

from repro.engine import (
    AgentBatchBackend,
    CompiledFSMBackend,
    EvaluationEngine,
    GRUPolicyBackend,
)
from repro.fsm.interpretation import fan_in_out_statistics, history_profile
from repro.fsm.render import fsm_summary_table
from repro.pipeline.experiments import small_pipeline_config
from repro.pipeline.learning_aided import LearningAidedPipeline
from repro.utils.tables import format_series


def run_engine_evaluation(pipeline, result, backend_kind: str, episode_seed: int) -> None:
    """Evaluate the pipeline's policy on its held-out traces through the
    inference engine — the same lockstep code path that training rollouts
    and the serving fast path run on."""
    engine = EvaluationEngine(pipeline.config.system, pipeline.config.reward)
    env = pipeline.make_env()
    if backend_kind == "gru":
        backend, label = GRUPolicyBackend(result.policy), "gru_drl"
    else:
        agent = result.fsm_agent(env)
        if backend_kind == "compiled":
            backend, label = CompiledFSMBackend(agent.compile()), f"{agent.name}[compiled]"
        else:
            backend = AgentBatchBackend.from_agent(agent, engine.encoder)
            label = f"{agent.name}[interpreted]"
    start = time.perf_counter()
    evaluation = engine.evaluate(
        backend, result.eval_traces, episode_seed=episode_seed, agent_name=label
    )
    elapsed = time.perf_counter() - start
    decisions = sum(evaluation.makespans)
    print(f"\nEngine evaluation [{label}] over {len(result.eval_traces)} "
          f"held-out traces ({decisions} decisions in {elapsed:.3f}s, "
          f"{decisions / elapsed:,.0f} decisions/s):")
    for name, makespan, reward in zip(
        evaluation.trace_names, evaluation.makespans, evaluation.total_rewards
    ):
        print(f"  {name:<28} makespan {makespan:4d}  total reward {reward:10.3f}")
    print(f"  mean makespan {evaluation.mean_makespan():.2f}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--compile-out", type=str, default=None, metavar="PATH",
        help="also compile the extracted FSM + observation QBN into a "
             "serving artifact (.npz) at PATH",
    )
    parser.add_argument(
        "--engine-backend", choices=("interpreted", "compiled", "gru"),
        default=None,
        help="also evaluate the extracted policy on the held-out traces "
             "through the unified inference engine with this backend "
             "(compiled and interpreted answer bit-identically; compiled "
             "runs the dense serving tables)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    pipeline = LearningAidedPipeline(
        small_pipeline_config(seed=args.seed, num_real_traces=12, num_eval_traces=6)
    )
    result = pipeline.run()
    fsm = result.extraction.fsm
    records = result.extraction.records

    print(fsm_summary_table(fsm, records))

    print("\nFan-in / fan-out utilisation shifts (Figure 5 analysis):")
    for label, stats in fan_in_out_statistics(fsm, records).items():
        shift = stats.utilization_shift()
        if shift is None:
            continue
        print(f"  {label} [{stats.action}] fan-in={stats.fan_in_count} "
              f"fan-out={stats.fan_out_count} d_util(N,KV,RV)=({shift[0]:+.3f}, "
              f"{shift[1]:+.3f}, {shift[2]:+.3f})")

    non_noop = [s for s in fsm.states_by_id() if s.action_name != "Noop"]
    target = max(non_noop or fsm.states_by_id(), key=lambda s: s.visit_count)
    profile = history_profile(fsm, records, target.label, window=10)
    steps = list(range(-10, 0))
    print(f"\nHistory window before entering {target.label} "
          f"[{profile.action}] (Figure 6 analysis, {profile.num_entries} entries):")
    print(" ", format_series("write_kb", steps, profile.write_intensity, floatfmt=".0f"))
    print(" ", format_series("read_kb ", steps, profile.read_intensity, floatfmt=".0f"))
    print(" ", format_series("capacity", steps, profile.capacity_ratio_series, floatfmt=".3f"))
    print(f"  write trend {profile.write_trend():+.0f} KB/interval, "
          f"capacity-ratio trend {profile.capacity_ratio_trend():+.4f}/interval")

    if args.compile_out:
        compiled = result.compiled_fsm_policy(pipeline.make_env())
        compiled.save(args.compile_out)
        print(f"\nCompiled serving artifact: {args.compile_out} "
              f"({compiled.num_states} states x {compiled.num_observations} "
              f"observation codes, start state row {compiled.start_state})")

    if args.engine_backend:
        run_engine_evaluation(pipeline, result, args.engine_backend, args.seed)


if __name__ == "__main__":
    main()
